//! Record/replay: capture a world's full reproduction recipe and its
//! stimulus journal, then rebuild and re-run it offline.
//!
//! The paper rejects reversible execution as too costly (§5.3); the cheap
//! alternative is determinism. Every [`World`] is a closed, seeded
//! discrete-event simulation, so the *complete* reproduction recipe is
//! small: the builder inputs (seed, topology, configs, programs, lockstep
//! window) plus the ordered journal of public driver calls ([`Stimulus`])
//! that pumped it. [`World::record`] packages those alongside the emitted
//! trace into a single self-describing [`Artifact`]; [`replay`] rebuilds
//! the world from the artifact alone, re-applies the journal, and diffs
//! the fresh trace against the recorded one event-by-event with
//! [`first_divergence`] — the same idea as URDB's record/replay and
//! out-of-place debugging's "replay away from the live system".
//!
//! # Examples
//!
//! ```
//! use pilgrim::replay::{replay, Artifact};
//! use pilgrim::World;
//! use pilgrim_sim::SimTime;
//!
//! let mut w = World::builder()
//!     .program("main = proc ()\n print(\"hi\")\n end")
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! w.spawn(0, "main", vec![]);
//! w.run_until_idle(SimTime::from_secs(1));
//!
//! let text = w.record().render();
//! let report = replay(&Artifact::parse(&text).unwrap()).unwrap();
//! assert!(report.divergence.is_none());
//! ```

use std::fmt;

use pilgrim_cclu::Value;
use pilgrim_mayflower::NodeConfig;
use pilgrim_ring::NetworkConfig;
use pilgrim_rpc::{RpcConfig, WireValue};
use pilgrim_sim::{first_divergence, Divergence, Json, SimDuration, TraceEvent};

use crate::agent::AgentConfig;
use crate::proto::AgentRequest;
use crate::world::{BuildError, World};

/// Artifact format tag, checked on load.
pub const FORMAT: &str = "pilgrim-replay";
/// Artifact format version, checked on load.
pub const VERSION: u32 = 1;

/// Everything [`crate::WorldBuilder`] needs to rebuild a world
/// bit-for-bit: topology, seeds, configs, programs, and the lockstep
/// window. Captured automatically by `build()`.
#[derive(Debug, Clone)]
pub struct Recipe {
    /// Number of user nodes.
    pub nodes: u32,
    /// Master seed.
    pub seed: u64,
    /// Requested lockstep window (the builder still applies its
    /// base-latency floor when rebuilding).
    pub window: SimDuration,
    /// The shared program source, if one was set.
    pub default_source: Option<String>,
    /// Per-node program overrides, sorted by node.
    pub per_node_source: Vec<(u32, String)>,
    /// Network model configuration.
    pub net: NetworkConfig,
    /// RPC runtime configuration.
    pub rpc: RpcConfig,
    /// Supervisor configuration.
    pub node_cfg: NodeConfig,
    /// Agent configuration.
    pub agent_cfg: AgentConfig,
    /// Whether a debugger station is attached.
    pub with_debugger: bool,
    /// Whether agents are linked into the nodes.
    pub with_agents: bool,
    /// Whether the full-resolution time-series store is armed. Part of
    /// the recipe so a replayed world samples identically and `tsdb`
    /// queries reproduce byte-for-byte.
    pub tsdb: bool,
    /// Head-based span sampling rate (0 or 1 = off). Recipe-carried so a
    /// replay keeps exactly the spans the live run kept.
    pub trace_sample: u32,
    /// Flight-recorder ring budget in events.
    pub blackbox_capacity: usize,
    /// Coarse always-on store: sync points per sample.
    pub coarse_interval: u64,
    /// Coarse always-on store: samples retained per series.
    pub coarse_budget: usize,
    /// Rust-side setup steps that ran against the built world before the
    /// first stimulus — native service installs (nameserver, aotman),
    /// trace filters, and the like. These cannot be journalled as
    /// stimuli (they register native handler closures), so the recipe
    /// records `(kind, params)` markers and [`replay_with_setup`] asks
    /// its caller to re-perform them. A plain [`replay`] of a
    /// setup-bearing artifact fails with a message naming the kinds.
    pub setup: Vec<(String, Json)>,
}

impl Recipe {
    /// The recipe as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("nodes", Json::Int(self.nodes as i128)),
            ("seed", Json::Int(self.seed as i128)),
            ("window_us", Json::Int(self.window.as_micros() as i128)),
            (
                "default_program",
                match &self.default_source {
                    Some(s) => Json::Str(s.clone()),
                    None => Json::Null,
                },
            ),
            (
                "programs",
                Json::Array(
                    self.per_node_source
                        .iter()
                        .map(|(node, src)| {
                            Json::obj(vec![
                                ("node", Json::Int(*node as i128)),
                                ("source", Json::Str(src.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("net", self.net.to_json()),
            ("rpc", self.rpc.to_json()),
            ("node_cfg", self.node_cfg.to_json()),
            ("agent", self.agent_cfg.to_json()),
            ("debugger", Json::Bool(self.with_debugger)),
            ("agents", Json::Bool(self.with_agents)),
            ("tsdb", Json::Bool(self.tsdb)),
            ("trace_sample", Json::Int(self.trace_sample as i128)),
            (
                "blackbox_capacity",
                Json::Int(self.blackbox_capacity as i128),
            ),
            ("coarse_interval", Json::Int(self.coarse_interval as i128)),
            ("coarse_budget", Json::Int(self.coarse_budget as i128)),
            (
                "setup",
                Json::Array(
                    self.setup
                        .iter()
                        .map(|(kind, params)| {
                            Json::obj(vec![
                                ("kind", Json::Str(kind.clone())),
                                ("params", params.clone()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuilds a recipe from [`to_json`](Recipe::to_json) output.
    ///
    /// # Errors
    ///
    /// Missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<Recipe, String> {
        let u32_field = |field: &str| -> Result<u32, String> {
            v.get(field)
                .and_then(Json::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("recipe: missing `{field}`"))
        };
        let default_source = match v.get("default_program") {
            None | Some(Json::Null) => None,
            Some(s) => Some(
                s.as_str()
                    .ok_or("recipe: non-string `default_program`")?
                    .to_string(),
            ),
        };
        let mut per_node_source = Vec::new();
        for p in v
            .get("programs")
            .and_then(Json::as_array)
            .ok_or("recipe: missing `programs`")?
        {
            let node = p
                .get("node")
                .and_then(Json::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or("recipe: program entry missing `node`")?;
            let source = p
                .get("source")
                .and_then(Json::as_str)
                .ok_or("recipe: program entry missing `source`")?;
            per_node_source.push((node, source.to_string()));
        }
        Ok(Recipe {
            nodes: u32_field("nodes")?,
            seed: v
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("recipe: missing `seed`")?,
            window: v
                .get("window_us")
                .and_then(Json::as_u64)
                .map(SimDuration::from_micros)
                .ok_or("recipe: missing `window_us`")?,
            default_source,
            per_node_source,
            net: NetworkConfig::from_json(v.get("net").ok_or("recipe: missing `net`")?)?,
            rpc: RpcConfig::from_json(v.get("rpc").ok_or("recipe: missing `rpc`")?)?,
            node_cfg: NodeConfig::from_json(
                v.get("node_cfg").ok_or("recipe: missing `node_cfg`")?,
            )?,
            agent_cfg: AgentConfig::from_json(v.get("agent").ok_or("recipe: missing `agent`")?)?,
            with_debugger: v
                .get("debugger")
                .and_then(Json::as_bool)
                .ok_or("recipe: missing `debugger`")?,
            with_agents: v
                .get("agents")
                .and_then(Json::as_bool)
                .ok_or("recipe: missing `agents`")?,
            // Absent in artifacts recorded before the time-series store
            // existed; those worlds ran without it.
            tsdb: v.get("tsdb").and_then(Json::as_bool).unwrap_or(false),
            // The four observability knobs below are absent in artifacts
            // recorded before they became tunable; those worlds ran at
            // the then-hard-coded defaults.
            trace_sample: v
                .get("trace_sample")
                .and_then(Json::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .unwrap_or(0),
            blackbox_capacity: v
                .get("blackbox_capacity")
                .and_then(Json::as_u64)
                .map(|n| n as usize)
                .unwrap_or(pilgrim_sim::BLACKBOX_CAPACITY),
            coarse_interval: v
                .get("coarse_interval")
                .and_then(Json::as_u64)
                .unwrap_or(crate::world::TSDB_COARSE_INTERVAL),
            coarse_budget: v
                .get("coarse_budget")
                .and_then(Json::as_u64)
                .map(|n| n as usize)
                .unwrap_or(crate::world::TSDB_COARSE_BUDGET),
            // Absent in artifacts recorded before setup markers existed.
            setup: match v.get("setup").and_then(Json::as_array) {
                None => Vec::new(),
                Some(entries) => {
                    let mut setup = Vec::new();
                    for e in entries {
                        let kind = e
                            .get("kind")
                            .and_then(Json::as_str)
                            .ok_or("recipe: setup entry missing `kind`")?;
                        let params = e.get("params").cloned().unwrap_or(Json::Null);
                        setup.push((kind.to_string(), params));
                    }
                    setup
                }
            },
        })
    }

    /// Builds a fresh world from the recipe.
    ///
    /// # Errors
    ///
    /// Program compilation failures and empty topologies.
    pub fn build_world(&self) -> Result<World, BuildError> {
        let mut b = World::builder()
            .nodes(self.nodes)
            .seed(self.seed)
            .lockstep_window(self.window)
            .network(self.net.clone())
            .rpc(self.rpc.clone())
            .node_config(self.node_cfg.clone())
            .agent(self.agent_cfg.clone())
            .debugger(self.with_debugger)
            .agents(self.with_agents)
            .tsdb(self.tsdb)
            .trace_sample(self.trace_sample)
            .blackbox_capacity(self.blackbox_capacity)
            .coarse_window(self.coarse_interval, self.coarse_budget);
        if let Some(src) = &self.default_source {
            b = b.program(src);
        }
        for (node, src) in &self.per_node_source {
            b = b.program_for(*node, src);
        }
        b.build()
    }
}

/// One recorded call into the world's public driving API, with concrete
/// arguments. Determinism makes the journal self-sufficient: replaying
/// the same stimuli against the same recipe reproduces every pid, call
/// id, and packet of the original run.
#[derive(Debug, Clone)]
pub enum Stimulus {
    /// [`World::spawn`] / [`World::try_spawn`].
    Spawn {
        /// Target node.
        node: u32,
        /// Entry procedure.
        entry: String,
        /// Arguments.
        args: Vec<Value>,
    },
    /// [`World::run_until`].
    RunUntil {
        /// Absolute limit, µs.
        until_us: u64,
    },
    /// [`World::run_for`].
    RunFor {
        /// Duration, µs.
        dur_us: u64,
    },
    /// [`World::run_until_idle`].
    RunUntilIdle {
        /// Absolute limit, µs.
        limit_us: u64,
    },
    /// [`World::debug_connect`].
    Connect {
        /// Session cohort.
        nodes: Vec<u32>,
        /// Forcible connection.
        force: bool,
    },
    /// [`World::debug_disconnect`].
    Disconnect,
    /// [`World::debug_abandon`].
    Abandon,
    /// [`World::debug_request`] — also the funnel for every composite
    /// query method (backtrace, inspect, …), which records one `Request`
    /// per wire round trip it makes.
    Request {
        /// Target node.
        node: u32,
        /// The request body.
        req: AgentRequest,
    },
    /// [`World::debug_events`].
    DrainEvents,
    /// [`World::wait_for_stop`].
    WaitForStop {
        /// Timeout, µs.
        timeout_us: u64,
    },
    /// [`World::break_at_line`].
    BreakAtLine {
        /// Target node.
        node: u32,
        /// Source line.
        line: u32,
    },
    /// [`World::break_at_proc`].
    BreakAtProc {
        /// Target node.
        node: u32,
        /// Procedure name.
        name: String,
    },
    /// [`World::clear_breakpoint`].
    ClearBreakpoint {
        /// Target node.
        node: u32,
        /// Agent breakpoint slot.
        bp: u16,
    },
    /// [`World::debug_halt_all`].
    HaltAll {
        /// Node whose agent initiates the halt.
        origin: u32,
    },
    /// [`World::debug_resume_all`].
    ResumeAll,
    /// [`World::diagnose_maybe_failure`].
    Diagnose {
        /// Server node.
        node: u32,
        /// The failed call.
        call_id: u64,
    },
    /// [`World::inject_drop`].
    DropNext {
        /// Sending node.
        src: u32,
        /// Destination node.
        dst: u32,
        /// Packets to drop.
        count: u32,
    },
    /// [`World::set_node_up`].
    SetNodeUp {
        /// Target station.
        node: u32,
        /// New interface state.
        up: bool,
    },
    /// [`World::set_link_up`].
    SetLinkUp {
        /// One end of the bridge link (a segment id).
        a: u32,
        /// The other end.
        b: u32,
        /// New link state.
        up: bool,
    },
    /// [`World::arm_watch`]. The expression is journalled in canonical
    /// form, so replay re-parses exactly what the original run armed.
    ArmWatch {
        /// Watch expression, e.g. `rpc.failed > 0`.
        expr: String,
    },
    /// [`World::clear_watch`].
    ClearWatch {
        /// Watch id returned by `arm_watch`.
        id: u64,
    },
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::obj(vec![("kind", Json::Str("null".into()))]),
        Value::Int(i) => Json::obj(vec![
            ("kind", Json::Str("int".into())),
            ("value", Json::Int(*i as i128)),
        ]),
        Value::Bool(b) => Json::obj(vec![
            ("kind", Json::Str("bool".into())),
            ("value", Json::Bool(*b)),
        ]),
        Value::Str(s) => Json::obj(vec![
            ("kind", Json::Str("str".into())),
            ("value", Json::Str(s.to_string())),
        ]),
        // Handles and heap references are node-local run-time state; a
        // journal containing one cannot be replayed and says so on load.
        Value::Sem(_) | Value::Mutex(_) | Value::Ref(_) => {
            Json::obj(vec![("kind", Json::Str("opaque".into()))])
        }
    }
}

fn value_from_json(v: &Json) -> Result<Value, String> {
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("value: missing `kind`")?;
    Ok(match kind {
        "null" => Value::Null,
        "int" => Value::Int(
            v.get("value")
                .and_then(Json::as_i64)
                .ok_or("value: missing int `value`")?,
        ),
        "bool" => Value::Bool(
            v.get("value")
                .and_then(Json::as_bool)
                .ok_or("value: missing bool `value`")?,
        ),
        "str" => Value::Str(
            v.get("value")
                .and_then(Json::as_str)
                .ok_or("value: missing str `value`")?
                .into(),
        ),
        "opaque" => {
            return Err(
                "value: a spawn argument was a node-local handle (semaphore, mutex, or heap \
                 reference); such journals cannot be replayed"
                    .to_string(),
            )
        }
        other => return Err(format!("value: unknown kind `{other}`")),
    })
}

fn request_to_json(req: &AgentRequest) -> Json {
    let t = |name: &str| ("type", Json::Str(name.to_string()));
    let u = |v: u64| Json::Int(v as i128);
    match req {
        AgentRequest::Ping => Json::obj(vec![t("Ping")]),
        AgentRequest::SetBreakpoint { proc_id, pc } => Json::obj(vec![
            t("SetBreakpoint"),
            ("proc_id", u(*proc_id as u64)),
            ("pc", u(*pc as u64)),
        ]),
        AgentRequest::ClearBreakpoint { bp } => {
            Json::obj(vec![t("ClearBreakpoint"), ("bp", u(*bp as u64))])
        }
        AgentRequest::ListBreakpoints => Json::obj(vec![t("ListBreakpoints")]),
        AgentRequest::HaltAll => Json::obj(vec![t("HaltAll")]),
        AgentRequest::ResumeAll => Json::obj(vec![t("ResumeAll")]),
        AgentRequest::ListProcesses => Json::obj(vec![t("ListProcesses")]),
        AgentRequest::ProcessState { pid } => Json::obj(vec![t("ProcessState"), ("pid", u(*pid))]),
        AgentRequest::ReadStack { pid } => Json::obj(vec![t("ReadStack"), ("pid", u(*pid))]),
        AgentRequest::ReadVar { pid, frame, slot } => Json::obj(vec![
            t("ReadVar"),
            ("pid", u(*pid)),
            ("frame", u(*frame as u64)),
            ("slot", u(*slot as u64)),
        ]),
        AgentRequest::WriteVar {
            pid,
            frame,
            slot,
            value,
        } => Json::obj(vec![
            t("WriteVar"),
            ("pid", u(*pid)),
            ("frame", u(*frame as u64)),
            ("slot", u(*slot as u64)),
            ("value", value.to_json()),
        ]),
        AgentRequest::ReadGlobal { slot } => {
            Json::obj(vec![t("ReadGlobal"), ("slot", u(*slot as u64))])
        }
        AgentRequest::WriteGlobal { slot, value } => Json::obj(vec![
            t("WriteGlobal"),
            ("slot", u(*slot as u64)),
            ("value", value.to_json()),
        ]),
        AgentRequest::PrintVar { pid, frame, slot } => Json::obj(vec![
            t("PrintVar"),
            ("pid", u(*pid)),
            ("frame", u(*frame as u64)),
            ("slot", u(*slot as u64)),
        ]),
        AgentRequest::Invoke { proc, args } => Json::obj(vec![
            t("Invoke"),
            ("proc", Json::Str(proc.clone())),
            (
                "args",
                Json::Array(args.iter().map(WireValue::to_json).collect()),
            ),
        ]),
        AgentRequest::StepOver { pid } => Json::obj(vec![t("StepOver"), ("pid", u(*pid))]),
        AgentRequest::ContinueProcess { pid } => {
            Json::obj(vec![t("ContinueProcess"), ("pid", u(*pid))])
        }
        AgentRequest::ForceRunnable { pid } => {
            Json::obj(vec![t("ForceRunnable"), ("pid", u(*pid))])
        }
        AgentRequest::HaltProcess { pid } => Json::obj(vec![t("HaltProcess"), ("pid", u(*pid))]),
        AgentRequest::ResumeProcess { pid } => {
            Json::obj(vec![t("ResumeProcess"), ("pid", u(*pid))])
        }
        AgentRequest::RpcStatus { pid } => Json::obj(vec![t("RpcStatus"), ("pid", u(*pid))]),
        AgentRequest::RecentCalls => Json::obj(vec![t("RecentCalls")]),
        AgentRequest::RecentServed => Json::obj(vec![t("RecentServed")]),
        AgentRequest::ServingProcess { call_id } => {
            Json::obj(vec![t("ServingProcess"), ("call_id", u(*call_id))])
        }
        AgentRequest::ServerKnowledge { call_id } => {
            Json::obj(vec![t("ServerKnowledge"), ("call_id", u(*call_id))])
        }
        AgentRequest::ClientProcess { call_id } => {
            Json::obj(vec![t("ClientProcess"), ("call_id", u(*call_id))])
        }
        AgentRequest::ReadConsole { from } => {
            Json::obj(vec![t("ReadConsole"), ("from", u(*from as u64))])
        }
    }
}

fn request_from_json(v: &Json) -> Result<AgentRequest, String> {
    let ty = v
        .get("type")
        .and_then(Json::as_str)
        .ok_or("request: missing `type`")?;
    let u = |field: &str| -> Result<u64, String> {
        v.get(field)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("request {ty}: missing `{field}`"))
    };
    let u16f = |field: &str| -> Result<u16, String> {
        u(field).and_then(|n| {
            u16::try_from(n).map_err(|_| format!("request {ty}: `{field}` out of range"))
        })
    };
    let u32f = |field: &str| -> Result<u32, String> {
        u(field).and_then(|n| {
            u32::try_from(n).map_err(|_| format!("request {ty}: `{field}` out of range"))
        })
    };
    let wire = |field: &str| -> Result<WireValue, String> {
        WireValue::from_json(
            v.get(field)
                .ok_or_else(|| format!("request {ty}: missing `{field}`"))?,
        )
    };
    Ok(match ty {
        "Ping" => AgentRequest::Ping,
        "SetBreakpoint" => AgentRequest::SetBreakpoint {
            proc_id: u16f("proc_id")?,
            pc: u32f("pc")?,
        },
        "ClearBreakpoint" => AgentRequest::ClearBreakpoint { bp: u16f("bp")? },
        "ListBreakpoints" => AgentRequest::ListBreakpoints,
        "HaltAll" => AgentRequest::HaltAll,
        "ResumeAll" => AgentRequest::ResumeAll,
        "ListProcesses" => AgentRequest::ListProcesses,
        "ProcessState" => AgentRequest::ProcessState { pid: u("pid")? },
        "ReadStack" => AgentRequest::ReadStack { pid: u("pid")? },
        "ReadVar" => AgentRequest::ReadVar {
            pid: u("pid")?,
            frame: u32f("frame")?,
            slot: u16f("slot")?,
        },
        "WriteVar" => AgentRequest::WriteVar {
            pid: u("pid")?,
            frame: u32f("frame")?,
            slot: u16f("slot")?,
            value: wire("value")?,
        },
        "ReadGlobal" => AgentRequest::ReadGlobal {
            slot: u16f("slot")?,
        },
        "WriteGlobal" => AgentRequest::WriteGlobal {
            slot: u16f("slot")?,
            value: wire("value")?,
        },
        "PrintVar" => AgentRequest::PrintVar {
            pid: u("pid")?,
            frame: u32f("frame")?,
            slot: u16f("slot")?,
        },
        "Invoke" => AgentRequest::Invoke {
            proc: v
                .get("proc")
                .and_then(Json::as_str)
                .ok_or("request Invoke: missing `proc`")?
                .to_string(),
            args: v
                .get("args")
                .and_then(Json::as_array)
                .ok_or("request Invoke: missing `args`")?
                .iter()
                .map(WireValue::from_json)
                .collect::<Result<_, _>>()?,
        },
        "StepOver" => AgentRequest::StepOver { pid: u("pid")? },
        "ContinueProcess" => AgentRequest::ContinueProcess { pid: u("pid")? },
        "ForceRunnable" => AgentRequest::ForceRunnable { pid: u("pid")? },
        "HaltProcess" => AgentRequest::HaltProcess { pid: u("pid")? },
        "ResumeProcess" => AgentRequest::ResumeProcess { pid: u("pid")? },
        "RpcStatus" => AgentRequest::RpcStatus { pid: u("pid")? },
        "RecentCalls" => AgentRequest::RecentCalls,
        "RecentServed" => AgentRequest::RecentServed,
        "ServingProcess" => AgentRequest::ServingProcess {
            call_id: u("call_id")?,
        },
        "ServerKnowledge" => AgentRequest::ServerKnowledge {
            call_id: u("call_id")?,
        },
        "ClientProcess" => AgentRequest::ClientProcess {
            call_id: u("call_id")?,
        },
        "ReadConsole" => AgentRequest::ReadConsole {
            from: u32f("from")?,
        },
        other => return Err(format!("request: unknown type `{other}`")),
    })
}

impl Stimulus {
    /// The stimulus as a tagged JSON object.
    pub fn to_json(&self) -> Json {
        let op = |name: &str| ("op", Json::Str(name.to_string()));
        let u = |v: u64| Json::Int(v as i128);
        match self {
            Stimulus::Spawn { node, entry, args } => Json::obj(vec![
                op("spawn"),
                ("node", u(*node as u64)),
                ("entry", Json::Str(entry.clone())),
                (
                    "args",
                    Json::Array(args.iter().map(value_to_json).collect()),
                ),
            ]),
            Stimulus::RunUntil { until_us } => {
                Json::obj(vec![op("run_until"), ("until_us", u(*until_us))])
            }
            Stimulus::RunFor { dur_us } => Json::obj(vec![op("run_for"), ("dur_us", u(*dur_us))]),
            Stimulus::RunUntilIdle { limit_us } => {
                Json::obj(vec![op("run_until_idle"), ("limit_us", u(*limit_us))])
            }
            Stimulus::Connect { nodes, force } => Json::obj(vec![
                op("connect"),
                (
                    "nodes",
                    Json::Array(nodes.iter().map(|n| u(*n as u64)).collect()),
                ),
                ("force", Json::Bool(*force)),
            ]),
            Stimulus::Disconnect => Json::obj(vec![op("disconnect")]),
            Stimulus::Abandon => Json::obj(vec![op("abandon")]),
            Stimulus::Request { node, req } => Json::obj(vec![
                op("request"),
                ("node", u(*node as u64)),
                ("req", request_to_json(req)),
            ]),
            Stimulus::DrainEvents => Json::obj(vec![op("drain_events")]),
            Stimulus::WaitForStop { timeout_us } => {
                Json::obj(vec![op("wait_for_stop"), ("timeout_us", u(*timeout_us))])
            }
            Stimulus::BreakAtLine { node, line } => Json::obj(vec![
                op("break_at_line"),
                ("node", u(*node as u64)),
                ("line", u(*line as u64)),
            ]),
            Stimulus::BreakAtProc { node, name } => Json::obj(vec![
                op("break_at_proc"),
                ("node", u(*node as u64)),
                ("name", Json::Str(name.clone())),
            ]),
            Stimulus::ClearBreakpoint { node, bp } => Json::obj(vec![
                op("clear_breakpoint"),
                ("node", u(*node as u64)),
                ("bp", u(*bp as u64)),
            ]),
            Stimulus::HaltAll { origin } => {
                Json::obj(vec![op("halt_all"), ("origin", u(*origin as u64))])
            }
            Stimulus::ResumeAll => Json::obj(vec![op("resume_all")]),
            Stimulus::Diagnose { node, call_id } => Json::obj(vec![
                op("diagnose"),
                ("node", u(*node as u64)),
                ("call_id", u(*call_id)),
            ]),
            Stimulus::DropNext { src, dst, count } => Json::obj(vec![
                op("drop_next"),
                ("src", u(*src as u64)),
                ("dst", u(*dst as u64)),
                ("count", u(*count as u64)),
            ]),
            Stimulus::SetNodeUp { node, up } => Json::obj(vec![
                op("set_node_up"),
                ("node", u(*node as u64)),
                ("up", Json::Bool(*up)),
            ]),
            Stimulus::SetLinkUp { a, b, up } => Json::obj(vec![
                op("set_link_up"),
                ("a", u(*a as u64)),
                ("b", u(*b as u64)),
                ("up", Json::Bool(*up)),
            ]),
            Stimulus::ArmWatch { expr } => {
                Json::obj(vec![op("arm_watch"), ("expr", Json::Str(expr.clone()))])
            }
            Stimulus::ClearWatch { id } => Json::obj(vec![op("clear_watch"), ("id", u(*id))]),
        }
    }

    /// Rebuilds a stimulus from [`to_json`](Stimulus::to_json) output.
    ///
    /// # Errors
    ///
    /// Unknown ops and missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<Stimulus, String> {
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("stimulus: missing `op`")?;
        let u = |field: &str| -> Result<u64, String> {
            v.get(field)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("stimulus {op}: missing `{field}`"))
        };
        let n32 = |field: &str| -> Result<u32, String> {
            u(field).and_then(|n| {
                u32::try_from(n).map_err(|_| format!("stimulus {op}: `{field}` out of range"))
            })
        };
        let b = |field: &str| -> Result<bool, String> {
            v.get(field)
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("stimulus {op}: missing `{field}`"))
        };
        Ok(match op {
            "spawn" => Stimulus::Spawn {
                node: n32("node")?,
                entry: v
                    .get("entry")
                    .and_then(Json::as_str)
                    .ok_or("stimulus spawn: missing `entry`")?
                    .to_string(),
                args: v
                    .get("args")
                    .and_then(Json::as_array)
                    .ok_or("stimulus spawn: missing `args`")?
                    .iter()
                    .map(value_from_json)
                    .collect::<Result<_, _>>()?,
            },
            "run_until" => Stimulus::RunUntil {
                until_us: u("until_us")?,
            },
            "run_for" => Stimulus::RunFor {
                dur_us: u("dur_us")?,
            },
            "run_until_idle" => Stimulus::RunUntilIdle {
                limit_us: u("limit_us")?,
            },
            "connect" => Stimulus::Connect {
                nodes: v
                    .get("nodes")
                    .and_then(Json::as_array)
                    .ok_or("stimulus connect: missing `nodes`")?
                    .iter()
                    .map(|n| {
                        n.as_u64()
                            .and_then(|n| u32::try_from(n).ok())
                            .ok_or("stimulus connect: bad node".to_string())
                    })
                    .collect::<Result<_, _>>()?,
                force: b("force")?,
            },
            "disconnect" => Stimulus::Disconnect,
            "abandon" => Stimulus::Abandon,
            "request" => Stimulus::Request {
                node: n32("node")?,
                req: request_from_json(v.get("req").ok_or("stimulus request: missing `req`")?)?,
            },
            "drain_events" => Stimulus::DrainEvents,
            "wait_for_stop" => Stimulus::WaitForStop {
                timeout_us: u("timeout_us")?,
            },
            "break_at_line" => Stimulus::BreakAtLine {
                node: n32("node")?,
                line: n32("line")?,
            },
            "break_at_proc" => Stimulus::BreakAtProc {
                node: n32("node")?,
                name: v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("stimulus break_at_proc: missing `name`")?
                    .to_string(),
            },
            "clear_breakpoint" => Stimulus::ClearBreakpoint {
                node: n32("node")?,
                bp: u("bp").and_then(|n| {
                    u16::try_from(n)
                        .map_err(|_| "stimulus clear_breakpoint: `bp` out of range".to_string())
                })?,
            },
            "halt_all" => Stimulus::HaltAll {
                origin: n32("origin")?,
            },
            "resume_all" => Stimulus::ResumeAll,
            "diagnose" => Stimulus::Diagnose {
                node: n32("node")?,
                call_id: u("call_id")?,
            },
            "drop_next" => Stimulus::DropNext {
                src: n32("src")?,
                dst: n32("dst")?,
                count: n32("count")?,
            },
            "set_node_up" => Stimulus::SetNodeUp {
                node: n32("node")?,
                up: b("up")?,
            },
            "set_link_up" => Stimulus::SetLinkUp {
                a: n32("a")?,
                b: n32("b")?,
                up: b("up")?,
            },
            "arm_watch" => Stimulus::ArmWatch {
                expr: v
                    .get("expr")
                    .and_then(Json::as_str)
                    .ok_or("stimulus arm_watch: missing `expr`")?
                    .to_string(),
            },
            "clear_watch" => Stimulus::ClearWatch { id: u("id")? },
            other => return Err(format!("stimulus: unknown op `{other}`")),
        })
    }
}

/// A self-describing recording: recipe + stimulus journal + the trace the
/// original run emitted.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// World reconstruction inputs.
    pub recipe: Recipe,
    /// Ordered public-API calls that drove the world.
    pub stimuli: Vec<Stimulus>,
    /// The recorded run's `trace_jsonl()` output, byte-exact.
    pub trace: String,
    /// Folded-stack profile snapshot (`World::folded_stacks`), captured
    /// when the recorded world profiled its VMs. Replay diffs a fresh
    /// profile against this, so a recording also pins *where simulated
    /// time went*, not just what happened.
    pub profile: Option<String>,
}

impl Artifact {
    /// Renders the artifact as one self-describing JSON document
    /// (trailing newline included).
    pub fn render(&self) -> String {
        let doc = Json::obj(vec![
            ("format", Json::Str(FORMAT.to_string())),
            ("version", Json::Int(VERSION as i128)),
            ("recipe", self.recipe.to_json()),
            (
                "stimuli",
                Json::Array(self.stimuli.iter().map(Stimulus::to_json).collect()),
            ),
            ("trace", Json::Str(self.trace.clone())),
            (
                "profile",
                match &self.profile {
                    Some(p) => Json::Str(p.clone()),
                    None => Json::Null,
                },
            ),
        ]);
        let mut out = String::new();
        doc.write(&mut out);
        out.push('\n');
        out
    }

    /// Parses an artifact rendered by [`render`](Artifact::render).
    ///
    /// # Errors
    ///
    /// Malformed JSON, wrong format tag or version, or bad sections.
    pub fn parse(text: &str) -> Result<Artifact, ReplayError> {
        let doc = Json::parse(text).map_err(|e| ReplayError::Format(e.to_string()))?;
        let format = doc.get("format").and_then(Json::as_str).unwrap_or("");
        if format != FORMAT {
            return Err(ReplayError::Format(format!(
                "not a {FORMAT} artifact (format tag `{format}`)"
            )));
        }
        let version = doc.get("version").and_then(Json::as_u64).unwrap_or(0);
        if version != VERSION as u64 {
            return Err(ReplayError::Format(format!(
                "unsupported artifact version {version} (expected {VERSION})"
            )));
        }
        let recipe = Recipe::from_json(
            doc.get("recipe")
                .ok_or_else(|| ReplayError::Format("missing `recipe`".to_string()))?,
        )
        .map_err(ReplayError::Format)?;
        let mut stimuli = Vec::new();
        for s in doc
            .get("stimuli")
            .and_then(Json::as_array)
            .ok_or_else(|| ReplayError::Format("missing `stimuli`".to_string()))?
        {
            stimuli.push(Stimulus::from_json(s).map_err(ReplayError::Format)?);
        }
        let trace = doc
            .get("trace")
            .and_then(Json::as_str)
            .ok_or_else(|| ReplayError::Format("missing `trace`".to_string()))?
            .to_string();
        // Absent in artifacts recorded before profiling existed; optional.
        let profile = doc
            .get("profile")
            .and_then(Json::as_str)
            .map(str::to_string);
        Ok(Artifact {
            recipe,
            stimuli,
            trace,
            profile,
        })
    }
}

/// Errors from loading or replaying an artifact.
#[derive(Debug)]
pub enum ReplayError {
    /// The artifact text is malformed or has the wrong format/version.
    Format(String),
    /// The recipe no longer builds (e.g. the program fails to compile).
    Build(BuildError),
    /// A journal entry could not be applied.
    Stimulus(String),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Format(e) => write!(f, "artifact format: {e}"),
            ReplayError::Build(e) => write!(f, "rebuilding world: {e}"),
            ReplayError::Stimulus(e) => write!(f, "applying stimulus: {e}"),
        }
    }
}
impl std::error::Error for ReplayError {}

/// Outcome of a replay run.
#[derive(Debug)]
pub struct ReplayReport {
    /// The replayed world, positioned after the last stimulus — ready for
    /// further interactive debugging past the recorded horizon.
    pub world: World,
    /// First difference between the recorded and fresh traces, if any.
    pub divergence: Option<Divergence>,
    /// Number of events in the recorded trace.
    pub recorded_events: usize,
    /// Whether the fresh trace is byte-identical to the recorded one
    /// (stronger than `divergence.is_none()`: it also pins the JSONL
    /// rendering itself).
    pub byte_identical: bool,
    /// When the artifact embedded a folded-stack profile: whether the
    /// replayed world's profile is byte-identical to it. `None` when the
    /// recording carried no profile.
    pub profile_identical: Option<bool>,
}

/// Rebuilds the world named by `artifact` and re-runs its journal, then
/// diffs the fresh trace against the recorded one.
///
/// # Errors
///
/// [`ReplayError::Build`] when the recipe no longer builds;
/// [`ReplayError::Stimulus`] when a journal entry cannot be applied
/// (e.g. a spawn argument that was recorded as opaque).
pub fn replay(artifact: &Artifact) -> Result<ReplayReport, ReplayError> {
    replay_with_threads(artifact, 1)
}

/// [`replay`], but stepping the rebuilt world on `threads` worker threads.
///
/// Thread count is an execution knob, not part of the recorded recipe, so
/// a run recorded serially must replay byte-identically in parallel and
/// vice versa — this entry point is how the parallel gate proves it.
///
/// # Errors
///
/// Exactly those of [`replay`].
pub fn replay_with_threads(
    artifact: &Artifact,
    threads: usize,
) -> Result<ReplayReport, ReplayError> {
    if !artifact.recipe.setup.is_empty() {
        let kinds: Vec<&str> = artifact
            .recipe
            .setup
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        return Err(ReplayError::Format(format!(
            "artifact needs Rust-side setup ({}); replay it with \
             `replay_with_setup` and an installer that knows these kinds",
            kinds.join(", ")
        )));
    }
    replay_with_setup(artifact, threads, &mut |_, kind, _| {
        Err(format!("unexpected setup kind `{kind}`"))
    })
}

/// The kind of callback [`replay_with_setup`] uses to re-perform a
/// recipe's Rust-side setup steps against the freshly built world.
pub type SetupInstaller<'a> = dyn FnMut(&mut World, &str, &Json) -> Result<(), String> + 'a;

/// [`replay_with_threads`] for artifacts whose recipe carries Rust-side
/// [`Recipe::setup`] steps (native service handlers, trace filters). The
/// `installer` is called once per recorded `(kind, params)` entry, in
/// order, right after the world is built and before any stimulus is
/// applied — it must re-create exactly what the recording run did.
///
/// # Errors
///
/// Those of [`replay`], plus [`ReplayError::Stimulus`] when the
/// installer rejects a setup entry.
pub fn replay_with_setup(
    artifact: &Artifact,
    threads: usize,
    installer: &mut SetupInstaller<'_>,
) -> Result<ReplayReport, ReplayError> {
    let mut world = artifact.recipe.build_world().map_err(ReplayError::Build)?;
    world.set_step_threads(threads);
    for (kind, params) in &artifact.recipe.setup {
        installer(&mut world, kind, params)
            .map_err(|e| ReplayError::Stimulus(format!("setup `{kind}`: {e}")))?;
    }
    for s in &artifact.stimuli {
        world.apply(s).map_err(ReplayError::Stimulus)?;
    }
    let fresh = world.trace_jsonl();
    let recorded = TraceEvent::parse_jsonl(&artifact.trace)
        .map_err(|e| ReplayError::Format(format!("recorded trace: {e}")))?;
    let fresh_events = TraceEvent::parse_jsonl(&fresh)
        .map_err(|e| ReplayError::Format(format!("fresh trace: {e}")))?;
    Ok(ReplayReport {
        divergence: first_divergence(&recorded, &fresh_events),
        recorded_events: recorded.len(),
        byte_identical: fresh == artifact.trace,
        profile_identical: artifact
            .profile
            .as_ref()
            .map(|p| *p == world.folded_stacks()),
        world,
    })
}

/// Convenience: parse + [`replay`] in one call.
///
/// # Errors
///
/// Everything [`Artifact::parse`] and [`replay`] can return.
pub fn replay_artifact(text: &str) -> Result<ReplayReport, ReplayError> {
    replay(&Artifact::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stimuli_round_trip_through_json() {
        let all = vec![
            Stimulus::Spawn {
                node: 1,
                entry: "main".into(),
                args: vec![
                    Value::Null,
                    Value::Int(-7),
                    Value::Bool(true),
                    Value::Str("hi \"there\"\n".into()),
                ],
            },
            Stimulus::RunUntil { until_us: u64::MAX },
            Stimulus::RunFor { dur_us: 1 },
            Stimulus::RunUntilIdle {
                limit_us: 30_000_000,
            },
            Stimulus::Connect {
                nodes: vec![0, 1, 2],
                force: true,
            },
            Stimulus::Disconnect,
            Stimulus::Abandon,
            Stimulus::Request {
                node: 0,
                req: AgentRequest::WriteVar {
                    pid: 3,
                    frame: 1,
                    slot: 2,
                    value: WireValue::Record {
                        type_name: "pt".into(),
                        fields: vec![WireValue::Int(1), WireValue::Array(vec![])],
                    },
                },
            },
            Stimulus::DrainEvents,
            Stimulus::WaitForStop {
                timeout_us: 5_000_000,
            },
            Stimulus::BreakAtLine { node: 0, line: 12 },
            Stimulus::BreakAtProc {
                node: 1,
                name: "ping".into(),
            },
            Stimulus::ClearBreakpoint { node: 1, bp: 0 },
            Stimulus::HaltAll { origin: 0 },
            Stimulus::ResumeAll,
            Stimulus::Diagnose {
                node: 1,
                call_id: (1u64 << 40) | 5,
            },
            Stimulus::DropNext {
                src: 0,
                dst: 1,
                count: 3,
            },
            Stimulus::SetNodeUp { node: 2, up: false },
            Stimulus::SetLinkUp {
                a: 0,
                b: 3,
                up: false,
            },
            Stimulus::ArmWatch {
                expr: "rpc.failed > 0".into(),
            },
            Stimulus::ClearWatch { id: 1 },
        ];
        for s in &all {
            let mut rendered = String::new();
            s.to_json().write(&mut rendered);
            let parsed = Json::parse(&rendered).expect("valid JSON");
            let back = Stimulus::from_json(&parsed).expect("decodes");
            let mut rendered2 = String::new();
            back.to_json().write(&mut rendered2);
            assert_eq!(rendered, rendered2, "stimulus did not round-trip: {s:?}");
        }
    }

    #[test]
    fn every_agent_request_round_trips() {
        let reqs = vec![
            AgentRequest::Ping,
            AgentRequest::SetBreakpoint { proc_id: 1, pc: 2 },
            AgentRequest::ClearBreakpoint { bp: 3 },
            AgentRequest::ListBreakpoints,
            AgentRequest::HaltAll,
            AgentRequest::ResumeAll,
            AgentRequest::ListProcesses,
            AgentRequest::ProcessState { pid: 4 },
            AgentRequest::ReadStack { pid: 5 },
            AgentRequest::ReadVar {
                pid: 6,
                frame: 7,
                slot: 8,
            },
            AgentRequest::WriteVar {
                pid: 9,
                frame: 10,
                slot: 11,
                value: WireValue::Str("x".into()),
            },
            AgentRequest::ReadGlobal { slot: 12 },
            AgentRequest::WriteGlobal {
                slot: 13,
                value: WireValue::Null,
            },
            AgentRequest::PrintVar {
                pid: 14,
                frame: 15,
                slot: 16,
            },
            AgentRequest::Invoke {
                proc: "p".into(),
                args: vec![WireValue::Bool(false)],
            },
            AgentRequest::StepOver { pid: 17 },
            AgentRequest::ContinueProcess { pid: 18 },
            AgentRequest::ForceRunnable { pid: 19 },
            AgentRequest::HaltProcess { pid: 20 },
            AgentRequest::ResumeProcess { pid: 21 },
            AgentRequest::RpcStatus { pid: 22 },
            AgentRequest::RecentCalls,
            AgentRequest::RecentServed,
            AgentRequest::ServingProcess { call_id: 23 },
            AgentRequest::ServerKnowledge { call_id: 24 },
            AgentRequest::ClientProcess { call_id: 25 },
            AgentRequest::ReadConsole { from: 26 },
        ];
        for req in &reqs {
            let mut rendered = String::new();
            request_to_json(req).write(&mut rendered);
            let parsed = Json::parse(&rendered).expect("valid JSON");
            let back = request_from_json(&parsed).expect("decodes");
            let mut rendered2 = String::new();
            request_to_json(&back).write(&mut rendered2);
            assert_eq!(rendered, rendered2, "request did not round-trip: {req:?}");
        }
    }

    #[test]
    fn opaque_spawn_args_fail_replay_loudly() {
        let rendered = {
            let mut out = String::new();
            value_to_json(&Value::Sem(3)).write(&mut out);
            out
        };
        let parsed = Json::parse(&rendered).unwrap();
        let err = value_from_json(&parsed).unwrap_err();
        assert!(err.contains("node-local"), "{err}");
    }

    #[test]
    fn artifact_rejects_foreign_documents() {
        assert!(matches!(
            Artifact::parse("{\"format\": \"other\"}"),
            Err(ReplayError::Format(_))
        ));
        assert!(matches!(
            Artifact::parse("not json"),
            Err(ReplayError::Format(_))
        ));
    }
}
