//! `pilgrim-replay` — load a recorded debugging session and re-run it.
//!
//! A recorded artifact (from the REPL's `record <path>` command or
//! [`pilgrim::World::record`]) carries the complete reproduction recipe:
//! builder inputs, the stimulus journal, and the trace the original run
//! emitted. This tool rebuilds the world from the artifact alone,
//! re-applies the journal, and diffs the fresh trace against the recorded
//! one event-by-event.
//!
//! ```text
//! pilgrim-replay <artifact.json>   replay a recording; exit 1 on divergence
//! pilgrim-replay selftest          record+replay the semantics-lock scenario
//!                                  in-process, then prove the checker catches
//!                                  a deliberately mutated trace
//! ```

use std::process::ExitCode;
use std::time::Instant;

use pilgrim::replay::{replay, Artifact};
use pilgrim::{DebugEvent, SimDuration, SimTime, World};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("selftest") => selftest(),
        Some(path) if !path.starts_with('-') => replay_file(path),
        _ => {
            eprintln!("usage: pilgrim-replay <artifact.json> | pilgrim-replay selftest");
            ExitCode::from(2)
        }
    }
}

/// Replays one artifact from disk and reports the outcome.
fn replay_file(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pilgrim-replay: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let artifact = match Artifact::parse(&text) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pilgrim-replay: {path} is not a replay artifact: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying {path}: {} nodes, seed {}, {} stimuli, {} recorded trace bytes",
        artifact.recipe.nodes,
        artifact.recipe.seed,
        artifact.stimuli.len(),
        artifact.trace.len()
    );
    let start = Instant::now();
    let report = match replay(&artifact) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pilgrim-replay: replay failed: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed = start.elapsed();
    match report.divergence {
        None => {
            println!(
                "OK: {} events replayed identically{} in {:.1}ms",
                report.recorded_events,
                if report.byte_identical {
                    " (byte-for-byte)"
                } else {
                    ""
                },
                elapsed.as_secs_f64() * 1e3
            );
            ExitCode::SUCCESS
        }
        Some(d) => {
            eprintln!("DIVERGENCE after {:.1}ms:", elapsed.as_secs_f64() * 1e3);
            eprintln!("{}", d.report());
            ExitCode::FAILURE
        }
    }
}

/// The semantics-lock scenario from `tests/semantics_lock.rs`: a sleep, a
/// cross-node RPC, and a breakpoint hit + resume under a pinned seed.
fn lock_scenario() -> World {
    const NODE0: &str = "\
ping = proc (x: int) returns (int)
 fail(\"only node 1 implements ping\")
end

main = proc ()
 sleep(5)
 r: int := call ping(21) at 1
 print(\"got \" || int$unparse(r))
end";
    const NODE1: &str = "\
ping = proc (x: int) returns (int)
 print(\"ping \" || int$unparse(x))
 return (x * 2)
end";

    let mut w = World::builder()
        .nodes(2)
        .program(NODE0)
        .program_for(1, NODE1)
        .seed(42)
        .build()
        .expect("scenario builds");
    w.debug_connect(&[0, 1], false).unwrap();
    w.break_at_proc(1, "ping").unwrap();
    w.spawn(0, "main", vec![]);
    let ev = w.wait_for_stop(SimDuration::from_secs(10)).unwrap();
    let DebugEvent::BreakpointHit { pid, .. } = ev else {
        panic!("expected breakpoint hit, got {ev:?}");
    };
    let bp = w.debugger().unwrap().breakpoints()[0].bp;
    w.clear_breakpoint(1, bp).unwrap();
    w.continue_process(1, pid).unwrap();
    w.debug_resume_all().unwrap();
    w.run_until_idle(SimTime::from_secs(30));
    w
}

/// Records and replays the lock scenario in-process, then mutates one
/// recorded event and proves the divergence checker reports it.
fn selftest() -> ExitCode {
    println!("== pilgrim-replay selftest ==");

    // Baseline: how long the scenario takes without recording overhead is
    // not separable here (recording is always on), so time the run itself.
    let t0 = Instant::now();
    let world = lock_scenario();
    let run_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let artifact = world.record();
    let text = artifact.render();
    let record_ms = t1.elapsed().as_secs_f64() * 1e3;
    println!(
        "run: {run_ms:.1}ms | record: {record_ms:.1}ms | artifact: {} bytes, {} stimuli",
        text.len(),
        artifact.stimuli.len()
    );

    let reparsed = match Artifact::parse(&text) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("selftest FAILED: rendered artifact does not parse: {e}");
            return ExitCode::FAILURE;
        }
    };

    let t2 = Instant::now();
    let report = match replay(&reparsed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("selftest FAILED: replay errored: {e}");
            return ExitCode::FAILURE;
        }
    };
    let replay_ms = t2.elapsed().as_secs_f64() * 1e3;
    if let Some(d) = report.divergence {
        eprintln!("selftest FAILED: clean replay diverged:\n{}", d.report());
        return ExitCode::FAILURE;
    }
    if !report.byte_identical {
        eprintln!("selftest FAILED: traces equal event-wise but not byte-identical");
        return ExitCode::FAILURE;
    }
    println!(
        "replay: {replay_ms:.1}ms | {} events byte-identical",
        report.recorded_events
    );

    // Now corrupt one recorded event and demand a precise report.
    let mut lines: Vec<&str> = reparsed.trace.lines().collect();
    let victim = lines.len() / 2;
    let mutated_line = lines[victim].replace("\"time_us\": ", "\"time_us\": 9");
    if mutated_line == lines[victim] {
        eprintln!("selftest FAILED: could not mutate event {victim}");
        return ExitCode::FAILURE;
    }
    lines[victim] = &mutated_line;
    let mut corrupted = reparsed.clone();
    corrupted.trace = lines.join("\n") + "\n";
    match replay(&corrupted) {
        Ok(r) => match r.divergence {
            Some(d) if d.index == victim => {
                println!("mutation check: divergence correctly pinned to event {victim}:");
                for line in d.report().lines().take(4) {
                    println!("  {line}");
                }
                println!("selftest OK");
                ExitCode::SUCCESS
            }
            Some(d) => {
                eprintln!(
                    "selftest FAILED: mutated event {victim} but divergence reported at {}",
                    d.index
                );
                ExitCode::FAILURE
            }
            None => {
                eprintln!("selftest FAILED: mutated trace replayed without divergence");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("selftest FAILED: replay of mutated artifact errored: {e}");
            ExitCode::FAILURE
        }
    }
}
