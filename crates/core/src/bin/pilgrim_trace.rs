//! `pilgrim-trace` — causal critical-path analytics over recorded traces.
//!
//! Every RPC in a recorded run leaves a span-linked event chain: call
//! started, packets sent and delivered (or lost and retransmitted),
//! server dispatch, reply. This tool reconstructs the span DAG from a
//! recorded artifact, attributes each span's simulated time to queueing,
//! the network, server execution, and unattributed wait, then reports
//! the critical path and the slowest spans — the "where did the time go"
//! question for a distributed computation, answered offline.
//!
//! Accepts either artifact the workspace produces: a `pilgrim-replay`
//! recording (analyzes its full trace) or a `pilgrim-blackbox` flight
//! recorder dump (analyzes the retained event ring).
//!
//! ```text
//! pilgrim-trace <artifact.json>             critical path + slowest spans
//! pilgrim-trace <artifact.json> --slow <k>  report k slowest spans
//! pilgrim-trace <artifact.json> --span <id> causal path to one span
//! pilgrim-trace <dump.json> --tsdb [metric] windowed time-series carried
//!                                           by a blackbox dump (all
//!                                           series, or one metric)
//! pilgrim-trace --selftest                  prove the analyzer end-to-end
//! ```

use std::process::ExitCode;

use pilgrim::blackbox::BlackboxSnapshot;
use pilgrim::replay::Artifact;
use pilgrim::{CausalGraph, NetworkConfig, SimTime, Value, World};
use pilgrim_sim::TraceEvent;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--selftest") | Some("selftest") => selftest(),
        Some(path) if !path.starts_with('-') => analyze_file(path, &args[1..]),
        _ => {
            eprintln!(
                "usage: pilgrim-trace <artifact.json> [--slow <k>] [--span <id>] \
                 [--tsdb [metric]] | pilgrim-trace --selftest"
            );
            ExitCode::from(2)
        }
    }
}

/// Decodes the trace carried by either artifact format.
fn load_events(path: &str) -> Result<Vec<TraceEvent>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if let Ok(artifact) = Artifact::parse(&text) {
        return TraceEvent::parse_jsonl(&artifact.trace)
            .map_err(|e| format!("{path}: recorded trace: {e}"));
    }
    match BlackboxSnapshot::parse(&text) {
        Ok(snap) => snap
            .decode_events()
            .map_err(|e| format!("{path}: blackbox events: {e}")),
        Err(e) => Err(format!(
            "{path} is neither a replay artifact nor a blackbox dump: {e}"
        )),
    }
}

fn analyze_file(path: &str, opts: &[String]) -> ExitCode {
    let mut slow_k = 5usize;
    let mut span: Option<u64> = None;
    let mut tsdb = false;
    let mut tsdb_metric: Option<String> = None;
    let mut it = opts.iter().peekable();
    while let Some(opt) = it.next() {
        let mut value = || -> Option<u64> { it.next().and_then(|v| v.parse().ok()) };
        match opt.as_str() {
            "--slow" => match value() {
                Some(k) => slow_k = k as usize,
                None => {
                    eprintln!("pilgrim-trace: --slow needs a count");
                    return ExitCode::from(2);
                }
            },
            "--span" => match value() {
                Some(s) => span = Some(s),
                None => {
                    eprintln!("pilgrim-trace: --span needs a span id");
                    return ExitCode::from(2);
                }
            },
            "--tsdb" => {
                tsdb = true;
                // The metric name is optional: bare --tsdb dumps every
                // retained series.
                if it.peek().is_some_and(|m| !m.starts_with("--")) {
                    tsdb_metric = it.next().cloned();
                }
            }
            other => {
                eprintln!("pilgrim-trace: unknown option {other}");
                return ExitCode::from(2);
            }
        }
    }
    if tsdb {
        return render_tsdb(path, tsdb_metric.as_deref());
    }
    let events = match load_events(path) {
        Ok(evs) => evs,
        Err(e) => {
            eprintln!("pilgrim-trace: {e}");
            return ExitCode::from(2);
        }
    };
    let graph = CausalGraph::from_events(&events);
    println!("{} events, {} spans", events.len(), graph.spans().len());
    if let Some(id) = span {
        print!("{}", graph.render_path(id));
        return ExitCode::SUCCESS;
    }
    print!("{}", graph.render_critical());
    print!("{}", graph.render_slowest(slow_k));
    ExitCode::SUCCESS
}

/// Prints the windowed time-series a blackbox dump carries — the
/// offline mirror of the REPL's `tsdb` command. With a metric name,
/// prints only that series' block; otherwise every retained series.
fn render_tsdb(path: &str, metric: Option<&str>) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pilgrim-trace: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let snap = match BlackboxSnapshot::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pilgrim-trace: --tsdb needs a blackbox dump: {e}");
            return ExitCode::from(2);
        }
    };
    if snap.series.is_empty() {
        println!("tsdb: no series retained in this dump");
        return ExitCode::SUCCESS;
    }
    let Some(metric) = metric else {
        print!("{}", snap.series);
        return ExitCode::SUCCESS;
    };
    // Series blocks start with a `tsdb <kind> <name>: …` header followed
    // by window rows; keep the block whose header names the metric.
    let mut out = String::new();
    let mut keep = false;
    for line in snap.series.lines() {
        if line.starts_with("tsdb ") {
            keep = line
                .split_whitespace()
                .nth(2)
                .map(|n| n.trim_end_matches(':'))
                == Some(metric);
        }
        if keep {
            out.push_str(line);
            out.push('\n');
        }
    }
    if out.is_empty() {
        println!("tsdb: no series named {metric}");
    } else {
        print!("{out}");
    }
    ExitCode::SUCCESS
}

/// The selftest scenario: four nodes, RPC fan-out from node 0 to three
/// servers over a lossy network, so the trace carries retransmissions
/// and losses the attribution must survive.
fn trace_scenario() -> World {
    const MAIN: &str = "\
ping = proc (x: int) returns (int)
 fail(\"servers implement ping\")
end

main = proc (rounds: int)
 total: int := 0
 for i: int := 1 to rounds do
  total := total + call ping(i) at 1
  total := total + call ping(i * 10) at 2
  total := total + call ping(i * 100) at 3
 end
 print(\"total \" || int$unparse(total))
end";
    const SERVER: &str = "\
ping = proc (x: int) returns (int)
 return (x * 2)
end";
    let net = NetworkConfig {
        p_silent_loss: 0.08,
        ..NetworkConfig::default()
    };
    let mut w = World::builder()
        .nodes(4)
        .program(MAIN)
        .program_for(1, SERVER)
        .program_for(2, SERVER)
        .program_for(3, SERVER)
        .network(net)
        .seed(0x1055)
        .tsdb(true)
        .build()
        .expect("scenario builds");
    w.spawn(0, "main", vec![Value::Int(4)]);
    w.run_until_idle(SimTime::from_secs(60));
    w
}

/// End-to-end proof of the analyzer: a lossy RPC run yields a non-empty
/// span DAG with retransmissions attributed, the critical path and
/// slowest-span reports render deterministically across runs, and both
/// artifact formats round-trip through the loader.
fn selftest() -> ExitCode {
    println!("== pilgrim-trace selftest ==");

    let world = trace_scenario();
    let events = world.tracer().events();
    let graph = CausalGraph::from_events(&events);
    if graph.spans().is_empty() {
        eprintln!("selftest FAILED: no spans reconstructed from the trace");
        return ExitCode::FAILURE;
    }
    let retransmits: u64 = graph.spans().iter().map(|p| p.retransmits as u64).sum();
    if retransmits == 0 {
        eprintln!("selftest FAILED: lossy scenario produced no retransmissions");
        return ExitCode::FAILURE;
    }
    let critical = graph.render_critical();
    let slowest = graph.render_slowest(5);
    if !critical.starts_with("critical path:") || !slowest.starts_with("slowest") {
        eprintln!("selftest FAILED: bad report headers:\n{critical}{slowest}");
        return ExitCode::FAILURE;
    }
    println!(
        "analysis: {} spans, {retransmits} retransmits attributed",
        graph.spans().len()
    );

    let again = trace_scenario();
    let graph2 = CausalGraph::from_events(&again.tracer().events());
    if graph2.render_critical() != critical || graph2.render_slowest(5) != slowest {
        eprintln!("selftest FAILED: two identical runs analyzed differently");
        return ExitCode::FAILURE;
    }
    if again.tsdb_summary() != world.tsdb_summary() {
        eprintln!("selftest FAILED: two identical runs sampled different time series");
        return ExitCode::FAILURE;
    }
    println!("determinism: second run byte-identical (reports and tsdb)");

    let dir = std::env::temp_dir();
    let replay_path = dir.join("pilgrim-trace-selftest-replay.json");
    let blackbox_path = dir.join("pilgrim-trace-selftest-blackbox.json");
    if let Err(e) = std::fs::write(&replay_path, world.record().render()) {
        eprintln!("selftest FAILED: cannot write scratch artifact: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&blackbox_path, world.blackbox_snapshot("selftest").render()) {
        eprintln!("selftest FAILED: cannot write scratch blackbox: {e}");
        return ExitCode::FAILURE;
    }
    let from_replay = load_events(replay_path.to_str().unwrap());
    let from_blackbox = load_events(blackbox_path.to_str().unwrap());
    let _ = std::fs::remove_file(&replay_path);
    let _ = std::fs::remove_file(&blackbox_path);
    match (from_replay, from_blackbox) {
        (Ok(replayed), Ok(boxed)) => {
            if replayed.len() != events.len() {
                eprintln!(
                    "selftest FAILED: replay artifact lost events ({} != {})",
                    replayed.len(),
                    events.len()
                );
                return ExitCode::FAILURE;
            }
            if boxed.is_empty() {
                eprintln!("selftest FAILED: blackbox ring was empty");
                return ExitCode::FAILURE;
            }
            if CausalGraph::from_events(&replayed).render_critical() != critical {
                eprintln!("selftest FAILED: analysis of the recording diverged from live");
                return ExitCode::FAILURE;
            }
            println!(
                "artifacts: replay ({} events) and blackbox ({} events) both load",
                replayed.len(),
                boxed.len()
            );
            let snap = world.blackbox_snapshot("selftest");
            if !snap.series.starts_with("tsdb ") {
                eprintln!("selftest FAILED: blackbox dump carries no time-series");
                return ExitCode::FAILURE;
            }
            println!(
                "tsdb: dump carries {} series blocks",
                snap.series
                    .lines()
                    .filter(|l| l.starts_with("tsdb "))
                    .count()
            );
        }
        (r, b) => {
            eprintln!("selftest FAILED: artifact loading: {r:?} / {b:?}");
            return ExitCode::FAILURE;
        }
    }
    println!("selftest OK");
    ExitCode::SUCCESS
}
