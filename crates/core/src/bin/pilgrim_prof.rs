//! `pilgrim-prof` — folded-stack profiles from recorded debugging sessions.
//!
//! The simulator attributes every VM instruction's simulated cost to the
//! full call stack executing it (when [`NodeConfig::profile_vm`] is on),
//! and folds the result into the classic flamegraph input format: one
//! `frame;frame;frame weight` line per distinct stack, weight in
//! simulated microseconds. Because the whole system is deterministic,
//! profiling a recording gives the *exact* profile of the original run —
//! even when the original run never profiled itself.
//!
//! ```text
//! pilgrim-prof <artifact.json>   print the recording's folded-stack
//!                                profile (re-runs it with profiling on
//!                                when the artifact has no embedded one)
//! pilgrim-prof --selftest        prove the profiler end-to-end: format,
//!                                recursion folding, determinism, replay
//!                                reproduction, and a tripping watchpoint
//! ```
//!
//! [`NodeConfig::profile_vm`]: pilgrim_mayflower::NodeConfig::profile_vm

use std::process::ExitCode;

use pilgrim::replay::{replay, Artifact};
use pilgrim::{SimTime, World};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--selftest") | Some("selftest") => selftest(),
        Some(path) if !path.starts_with('-') => profile_file(path),
        _ => {
            eprintln!("usage: pilgrim-prof <artifact.json> | pilgrim-prof --selftest");
            ExitCode::from(2)
        }
    }
}

/// Prints the folded-stack profile of a recorded session. Uses the
/// embedded snapshot when the artifact has one; otherwise rebuilds the
/// world with profiling forced on and re-runs the journal.
fn profile_file(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pilgrim-prof: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut artifact = match Artifact::parse(&text) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pilgrim-prof: {path} is not a replay artifact: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(profile) = &artifact.profile {
        print!("{profile}");
        return ExitCode::SUCCESS;
    }
    // The recording ran unprofiled. Profiling is invisible to program
    // semantics, so force it on and re-drive the same journal: the
    // deterministic re-run *is* the original run, now instrumented.
    artifact.recipe.node_cfg.profile_vm = true;
    let mut world = match artifact.recipe.build_world() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("pilgrim-prof: recipe no longer builds: {e}");
            return ExitCode::from(2);
        }
    };
    for s in &artifact.stimuli {
        if let Err(e) = world.apply(s) {
            eprintln!("pilgrim-prof: cannot re-apply journal: {e}");
            return ExitCode::from(2);
        }
    }
    print!("{}", world.folded_stacks());
    ExitCode::SUCCESS
}

/// A profiled scenario with recursion and a cross-node RPC: fib(8) on
/// node 0, then one remote `double` call to node 1.
fn prof_scenario() -> World {
    let mut w = prof_scenario_unrun();
    w.spawn(0, "main", vec![]);
    w.run_until_idle(SimTime::from_secs(30));
    w
}

/// The selftest scenario's world, built but not yet driven.
fn prof_scenario_unrun() -> World {
    const NODE0: &str = "\
double = proc (x: int) returns (int)
 fail(\"only node 1 implements double\")
end

fib = proc (n: int) returns (int)
 if n < 2 then
 return (n)
 end
 return (fib(n - 1) + fib(n - 2))
end

main = proc ()
 f: int := fib(8)
 r: int := call double(f) at 1
 print(int$unparse(r))
end";
    const NODE1: &str = "\
double = proc (x: int) returns (int)
 return (x * 2)
end";
    World::builder()
        .nodes(2)
        .program(NODE0)
        .program_for(1, NODE1)
        .seed(42)
        .node_config(pilgrim_mayflower::NodeConfig {
            profile_vm: true,
            ..Default::default()
        })
        .build()
        .expect("scenario builds")
}

/// Validates one folded-stack document: non-empty, every line is
/// `frame(;frame)* <weight>` with a positive integer weight.
fn check_format(folded: &str) -> Result<(), String> {
    if folded.is_empty() {
        return Err("profile is empty".to_string());
    }
    for line in folded.lines() {
        let (stack, weight) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("no weight separator in `{line}`"))?;
        if stack.is_empty() || stack.split(';').any(str::is_empty) {
            return Err(format!("malformed stack in `{line}`"));
        }
        let w: u64 = weight
            .parse()
            .map_err(|_| format!("non-integer weight in `{line}`"))?;
        if w == 0 {
            return Err(format!("zero-weight line `{line}`"));
        }
    }
    Ok(())
}

/// End-to-end proof of the profiler: valid folded output with the
/// recursive path present, byte-identical across runs and under replay,
/// and a metric watchpoint that halts the world.
fn selftest() -> ExitCode {
    println!("== pilgrim-prof selftest ==");

    let world = prof_scenario();
    let folded = world.folded_stacks();
    if let Err(e) = check_format(&folded) {
        eprintln!("selftest FAILED: bad folded output: {e}");
        return ExitCode::FAILURE;
    }
    let lines = folded.lines().count();
    if !folded.contains("node0;main;fib;fib") {
        eprintln!("selftest FAILED: recursive fib path missing:\n{folded}");
        return ExitCode::FAILURE;
    }
    if !folded.contains("node1;") {
        eprintln!("selftest FAILED: server node missing from profile:\n{folded}");
        return ExitCode::FAILURE;
    }
    println!("format: {lines} folded lines, recursion + both nodes present");

    let again = prof_scenario().folded_stacks();
    if again != folded {
        eprintln!("selftest FAILED: two identical runs profiled differently");
        return ExitCode::FAILURE;
    }
    println!("determinism: second run byte-identical");

    let artifact = world.record();
    if artifact.profile.as_deref() != Some(folded.as_str()) {
        eprintln!("selftest FAILED: artifact did not embed the profile");
        return ExitCode::FAILURE;
    }
    let text = artifact.render();
    let reparsed = match Artifact::parse(&text) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("selftest FAILED: rendered artifact does not parse: {e}");
            return ExitCode::FAILURE;
        }
    };
    match replay(&reparsed) {
        Ok(r) => {
            if r.divergence.is_some() {
                eprintln!("selftest FAILED: profiled replay diverged");
                return ExitCode::FAILURE;
            }
            if r.profile_identical != Some(true) {
                eprintln!(
                    "selftest FAILED: replayed profile not identical ({:?})",
                    r.profile_identical
                );
                return ExitCode::FAILURE;
            }
        }
        Err(e) => {
            eprintln!("selftest FAILED: replay errored: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("replay: trace and profile both reproduced byte-identically");

    // Watchpoint: net.sent increments as soon as the RPC's first packet
    // leaves node 0, so an armed watch must halt the run early.
    let mut w = prof_scenario_unrun();
    let id = match w.arm_watch("net.sent > 0") {
        Ok(id) => id,
        Err(e) => {
            eprintln!("selftest FAILED: arm_watch: {e}");
            return ExitCode::FAILURE;
        }
    };
    w.spawn(0, "main", vec![]);
    w.run_until_idle(SimTime::from_secs(30));
    let trips = w.watch_trips();
    let Some((tid, expr, trip)) = trips.first() else {
        eprintln!("selftest FAILED: watch never tripped");
        return ExitCode::FAILURE;
    };
    if *tid != id || w.now() != trip.at || w.now() >= SimTime::from_secs(30) {
        eprintln!("selftest FAILED: watch trip did not halt the world at the trip point");
        return ExitCode::FAILURE;
    }
    println!(
        "watchpoint: `{expr}` halted the world at {} (observed {})",
        trip.at, trip.value
    );
    println!("selftest OK");
    ExitCode::SUCCESS
}
