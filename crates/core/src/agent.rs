//! The Pilgrim agent: "every node of a user program has a piece of
//! debugging support code, called the agent, included in it by the linker"
//! (§3).
//!
//! The agent stays dormant until a debugger connects. Its functions are
//! exactly the paper's list:
//!
//! * session management: accept a connection at any time, validate the
//!   session identifier on every interaction, allow a second debugger to
//!   **forcibly connect** (abandoning the old session and clearing all
//!   breakpoints), use **no timeouts** of its own;
//! * the low-level primitives that must live on the node: memory access,
//!   trap handling, breakpoint set/clear/**step-over** (§5.5), and
//!   procedure invocation with output redirected to the debugger (§3) —
//!   which is also how user-defined print operations are run;
//! * halting: on a breakpoint, hardware exception or user program failure,
//!   halt local processes immediately via the supervisor primitive and
//!   send halt messages serially to every other node under control of the
//!   debugger, retransmitting on ring NACK (§5.2);
//! * the logical-clock delta: on resume, fold the measured halt duration
//!   into the node's delta (§5.2);
//! * the `get_debuggee_status` support procedure for shared servers
//!   (§6.1), exported as an RPC handler on the node.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use pilgrim_cclu::{CodeAddr, Fault, FrameKind, Op, ProcId, Signature, Type, Value};
use pilgrim_mayflower::{Node, Outcall, Pid, ProcBody, RunState, SpawnOpts};
use pilgrim_ring::{Medium, NodeId, TxStatus};
use pilgrim_rpc::{marshal, unmarshal, HandlerCtx, NativeHandler, RpcEndpoint};
use pilgrim_sim::{EventKind, Json, SimDuration, SimTime, TraceCategory, Tracer};

use crate::proto::{
    AgentEvent, AgentReply, AgentRequest, DebugMsg, FrameSummary, ProcView, RpcCallView,
    RpcFrameView, SessionId, StateView,
};

/// Network access for agents (and the debugger). Implemented by the world
/// over the simulated ring.
pub trait DebugNet {
    /// Sends one message; returns the ring's transmission status (a NACK
    /// means the destination interface did not receive it, §5.2).
    fn send_debug(&mut self, at: SimTime, src: NodeId, dst: NodeId, msg: DebugMsg) -> TxStatus;
    /// Sends with NACK-retransmission (the halt protocol's reliability
    /// scheme). Returns the final status and the number of attempts.
    fn send_debug_reliable(
        &mut self,
        at: SimTime,
        src: NodeId,
        dst: NodeId,
        msg: DebugMsg,
        max_attempts: u32,
    ) -> (TxStatus, u32);
    /// Data-link broadcast, available only on Ethernet-style media.
    fn broadcast_debug(&mut self, at: SimTime, src: NodeId, msg: DebugMsg) -> Option<SimTime>;
    /// The physical medium.
    fn medium(&self) -> Medium;
}

/// Agent tuning.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Processing cost per handled request before the reply is sent.
    pub request_cost: SimDuration,
    /// Maximum transmissions per halt-broadcast destination.
    pub halt_retransmit: u32,
    /// Use the medium's data-link broadcast for halting when available
    /// (the Ethernet comparison in §5.2 / experiment E3).
    pub broadcast_halt: bool,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            request_cost: SimDuration::from_micros(200),
            halt_retransmit: 8,
            broadcast_halt: false,
        }
    }
}

impl AgentConfig {
    /// The config as a JSON object for the replay recipe.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "request_cost_us",
                Json::Int(self.request_cost.as_micros() as i128),
            ),
            ("halt_retransmit", Json::Int(self.halt_retransmit as i128)),
            ("broadcast_halt", Json::Bool(self.broadcast_halt)),
        ])
    }

    /// Rebuilds a config from [`to_json`](AgentConfig::to_json) output.
    ///
    /// # Errors
    ///
    /// Missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<AgentConfig, String> {
        Ok(AgentConfig {
            request_cost: v
                .get("request_cost_us")
                .and_then(Json::as_u64)
                .map(SimDuration::from_micros)
                .ok_or("agent config: missing `request_cost_us`")?,
            halt_retransmit: v
                .get("halt_retransmit")
                .and_then(Json::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or("agent config: missing `halt_retransmit`")?,
            broadcast_halt: v
                .get("broadcast_halt")
                .and_then(Json::as_bool)
                .ok_or("agent config: missing `broadcast_halt`")?,
        })
    }
}

/// Counters for the halting experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct AgentStats {
    /// Requests handled.
    pub requests: u64,
    /// Times this node initiated a halt.
    pub halts_initiated: u64,
    /// Halt messages transmitted (including retransmissions).
    pub halt_messages: u64,
    /// Times this node was halted by a broadcast.
    pub halts_received: u64,
}

/// State shared between the agent and its `get_debuggee_status` handler.
#[derive(Debug, Default)]
pub struct AgentShared {
    /// Current session, if a debugger is connected.
    pub session: Option<SessionId>,
    /// The connected debugger's network address.
    pub debugger: Option<NodeId>,
}

#[derive(Debug)]
struct Breakpoint {
    addr: CodeAddr,
    orig: Op,
}

#[derive(Debug, Clone, Copy)]
enum InvokeKind {
    /// Reply with `Printed` from the redirected output (print operation).
    Print,
    /// Reply with `Invoked { results, output }`.
    Full,
}

#[derive(Debug)]
struct PendingInvoke {
    seq: u64,
    debugger: NodeId,
    kind: InvokeKind,
}

/// The per-node agent.
pub struct Agent {
    node_id: NodeId,
    config: AgentConfig,
    shared: Rc<RefCell<AgentShared>>,
    cohort: Vec<NodeId>,
    breakpoints: Vec<Option<Breakpoint>>,
    halt_since: Option<SimTime>,
    pending_invokes: HashMap<Pid, PendingInvoke>,
    registry: HashMap<u64, Arc<str>>,
    stats: AgentStats,
    tracer: Tracer,
}

impl std::fmt::Debug for Agent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Agent")
            .field("node", &self.node_id)
            .field("session", &self.shared.borrow().session)
            .field("breakpoints", &self.breakpoints.iter().flatten().count())
            .finish()
    }
}

impl Agent {
    /// Creates the agent for `node_id`.
    pub fn new(node_id: NodeId, config: AgentConfig, tracer: Tracer) -> Agent {
        Agent {
            node_id,
            config,
            shared: Rc::new(RefCell::new(AgentShared::default())),
            cohort: Vec::new(),
            breakpoints: Vec::new(),
            halt_since: None,
            pending_invokes: HashMap::new(),
            registry: HashMap::new(),
            stats: AgentStats::default(),
            tracer,
        }
    }

    /// Counters.
    pub fn stats(&self) -> AgentStats {
        self.stats
    }

    /// Is a debugger connected?
    pub fn connected(&self) -> bool {
        self.shared.borrow().session.is_some()
    }

    /// The current session, if any.
    pub fn session(&self) -> Option<SessionId> {
        self.shared.borrow().session
    }

    /// The `get_debuggee_status` support procedure (§6.1), to be
    /// registered as an RPC handler on this node. Shares state with the
    /// agent, so servers always see the current connection status and the
    /// node's logical clock.
    pub fn status_handler(&self) -> Box<dyn NativeHandler> {
        Box::new(StatusHandler {
            shared: self.shared.clone(),
        })
    }

    /// Processes a supervisor outcall the world routed to this agent.
    pub fn on_outcall(
        &mut self,
        node: &mut Node,
        endpoint: &RpcEndpoint,
        oc: &Outcall,
        net: &mut dyn DebugNet,
    ) {
        match oc {
            Outcall::Trap { pid, bp, addr, at } => {
                self.on_trap(node, *pid, *bp, *addr, *at, net);
            }
            Outcall::Fault { pid, fault, at } => {
                self.on_fault(node, endpoint, *pid, fault, *at, net);
            }
            Outcall::ProcCreated { pid, name } => {
                // §5.4: hooks in process creation call the agent so it
                // knows of the existence of every process.
                self.registry.insert(pid.0, name.clone());
            }
            Outcall::ProcExited { pid, at } => {
                self.on_proc_exited(node, *pid, *at, net);
            }
            _ => {}
        }
    }

    fn on_trap(
        &mut self,
        node: &mut Node,
        pid: Pid,
        bp: u16,
        addr: CodeAddr,
        at: SimTime,
        net: &mut dyn DebugNet,
    ) {
        let Some((session, debugger)) = self.session_and_debugger() else {
            // No debugger: a trap without a session should not exist
            // (forcible disconnect clears breakpoints); release the
            // process defensively.
            node.release_stopped(pid);
            return;
        };
        self.halt_locally_and_broadcast(node, at, net, session);
        let event = AgentEvent::BreakpointHit {
            node: self.node_id,
            pid: pid.0,
            bp,
            proc_id: addr.proc.0,
            pc: addr.pc,
            at,
        };
        net.send_debug(
            at,
            self.node_id,
            debugger,
            DebugMsg::Event { session, event },
        );
    }

    fn on_fault(
        &mut self,
        node: &mut Node,
        _endpoint: &RpcEndpoint,
        pid: Pid,
        fault: &Fault,
        at: SimTime,
        net: &mut dyn DebugNet,
    ) {
        // Faults of agent-invoked procedures complete the invocation with
        // an error instead of halting the world.
        if let Some(pending) = self.pending_invokes.remove(&pid) {
            let reply = AgentReply::Error(format!("invoked procedure failed: {fault}"));
            self.send_reply(at, pending.debugger, pending.seq, reply, net);
            return;
        }
        let Some((session, debugger)) = self.session_and_debugger() else {
            return; // dormant: the process stays Faulted for post-mortem
        };
        // §5.2: the agent uses the halt primitive "upon hardware exceptions
        // and user program failures as well".
        self.halt_locally_and_broadcast(node, at, net, session);
        let event = AgentEvent::ProcessFaulted {
            node: self.node_id,
            pid: pid.0,
            message: fault.to_string(),
            at,
        };
        net.send_debug(
            at,
            self.node_id,
            debugger,
            DebugMsg::Event { session, event },
        );
    }

    fn on_proc_exited(&mut self, node: &mut Node, pid: Pid, at: SimTime, net: &mut dyn DebugNet) {
        self.registry.remove(&pid.0);
        let Some(pending) = self.pending_invokes.remove(&pid) else {
            return;
        };
        let output = node.redirected_output(pid).unwrap_or("").to_string();
        let reply = match pending.kind {
            InvokeKind::Print => {
                // The print procedure returns the rendered string; prefer
                // it, fall back to whatever was printed.
                let rendered = node
                    .exit_values(pid)
                    .and_then(|vs| vs.first())
                    .and_then(|v| v.as_str().map(str::to_string))
                    .unwrap_or(output);
                AgentReply::Printed(rendered)
            }
            InvokeKind::Full => {
                let results = node
                    .exit_values(pid)
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(|v| marshal(node.heap(), v).ok())
                    .collect();
                AgentReply::Invoked { results, output }
            }
        };
        self.send_reply(at, pending.debugger, pending.seq, reply, net);
    }

    fn session_and_debugger(&self) -> Option<(SessionId, NodeId)> {
        let s = self.shared.borrow();
        Some((s.session?, s.debugger?))
    }

    /// Halts local processes immediately and sends the halt broadcast to
    /// the cohort (§5.2). On the Cambridge Ring the messages go out
    /// serially with NACK-retransmission; with
    /// [`AgentConfig::broadcast_halt`] on an Ethernet medium a single
    /// broadcast is used instead.
    fn halt_locally_and_broadcast(
        &mut self,
        node: &mut Node,
        at: SimTime,
        net: &mut dyn DebugNet,
        session: SessionId,
    ) {
        if self.halt_since.is_none() {
            node.halt_all();
            node.mark_halted(at);
            self.halt_since = Some(at);
            self.stats.halts_initiated += 1;
            if self.tracer.wants(TraceCategory::Debug) {
                self.tracer.emit(
                    at,
                    TraceCategory::Debug,
                    Some(self.node_id.0),
                    None,
                    EventKind::BreakpointHalt,
                );
            }
        }
        let msg = DebugMsg::HaltBroadcast {
            session,
            origin: self.node_id,
        };
        if self.config.broadcast_halt && net.medium() == Medium::Ethernet {
            net.broadcast_debug(at, self.node_id, msg);
            self.stats.halt_messages += 1;
            return;
        }
        let cohort: Vec<NodeId> = self
            .cohort
            .iter()
            .copied()
            .filter(|n| *n != self.node_id)
            .collect();
        for dst in cohort {
            let (_, attempts) = net.send_debug_reliable(
                at,
                self.node_id,
                dst,
                msg.clone(),
                self.config.halt_retransmit,
            );
            self.stats.halt_messages += u64::from(attempts);
        }
    }

    /// Handles a debugger/agent message delivered to this node.
    pub fn on_msg(
        &mut self,
        now: SimTime,
        node: &mut Node,
        endpoint: &RpcEndpoint,
        src: NodeId,
        msg: DebugMsg,
        net: &mut dyn DebugNet,
    ) {
        match msg {
            DebugMsg::Connect {
                session,
                force,
                debugger,
                cohort,
            } => {
                let accepted = {
                    let current = self.shared.borrow().session;
                    current.is_none() || force || current == Some(session)
                };
                if accepted {
                    if force {
                        // Forcible connection: the original session is
                        // abandoned and all breakpoints etc. cleared (§3).
                        self.clear_session_state(node, now);
                    }
                    let mut s = self.shared.borrow_mut();
                    s.session = Some(session);
                    s.debugger = Some(debugger);
                    drop(s);
                    self.cohort = cohort;
                }
                net.send_debug(
                    now + self.config.request_cost,
                    self.node_id,
                    src,
                    DebugMsg::ConnectReply {
                        session,
                        accepted,
                        node: self.node_id,
                    },
                );
            }
            DebugMsg::Disconnect { session } => {
                if self.shared.borrow().session == Some(session) {
                    self.clear_session_state(node, now);
                    // §5.2: at the end of a debugging session the logical
                    // clock is reset to real time (with unpredictable
                    // effect, the paper warns).
                    node.reset_delta();
                }
            }
            DebugMsg::Request { session, seq, req } => {
                self.stats.requests += 1;
                if self.shared.borrow().session != Some(session) {
                    self.send_reply(
                        now,
                        src,
                        seq,
                        AgentReply::Error(format!("bad session {session}")),
                        net,
                    );
                    return;
                }
                // A `None` means the reply is asynchronous (sent when the
                // agent-initiated invocation completes).
                if let Some(reply) = self.handle_request(now, node, endpoint, seq, src, req, net) {
                    self.send_reply(now, src, seq, reply, net);
                }
            }
            DebugMsg::HaltBroadcast { session, origin } => {
                if self.shared.borrow().session != Some(session) {
                    return;
                }
                if self.halt_since.is_none() {
                    node.halt_all();
                    node.mark_halted(now);
                    self.halt_since = Some(now);
                    self.stats.halts_received += 1;
                    if self.tracer.wants(TraceCategory::Debug) {
                        self.tracer.emit(
                            now,
                            TraceCategory::Debug,
                            Some(self.node_id.0),
                            None,
                            EventKind::HaltBroadcast { origin: origin.0 },
                        );
                    }
                }
            }
            DebugMsg::ResumeBroadcast { session, .. } => {
                if self.shared.borrow().session != Some(session) {
                    return;
                }
                self.resume_node(node, now);
            }
            // Replies/events/connect-replies are debugger-side messages.
            DebugMsg::ConnectReply { .. } | DebugMsg::Reply { .. } | DebugMsg::Event { .. } => {}
        }
    }

    fn clear_session_state(&mut self, node: &mut Node, now: SimTime) {
        // Remove every planted trap.
        for slot in 0..self.breakpoints.len() {
            if let Some(bp) = self.breakpoints[slot].take() {
                node.program_mut().replace_op(bp.addr, bp.orig);
            }
        }
        // Release stopped processes and resume halted ones.
        for pid in node.pids() {
            node.release_stopped(pid);
        }
        self.resume_node(node, now);
        self.pending_invokes.clear();
        let mut s = self.shared.borrow_mut();
        s.session = None;
        s.debugger = None;
    }

    fn resume_node(&mut self, node: &mut Node, now: SimTime) -> SimDuration {
        let Some(since) = self.halt_since.take() else {
            return SimDuration::ZERO;
        };
        let halted_for = node
            .clear_halt_marker()
            .unwrap_or_else(|| now.saturating_since(since));
        // §5.2: delta := current time − time of breakpoint + previous delta.
        node.add_delta(halted_for);
        node.resume_all();
        halted_for
    }

    fn send_reply(
        &self,
        now: SimTime,
        dst: NodeId,
        seq: u64,
        reply: AgentReply,
        net: &mut dyn DebugNet,
    ) {
        let session = self.shared.borrow().session.unwrap_or(SessionId(0));
        net.send_debug(
            now + self.config.request_cost,
            self.node_id,
            dst,
            DebugMsg::Reply {
                session,
                seq,
                reply,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_request(
        &mut self,
        now: SimTime,
        node: &mut Node,
        endpoint: &RpcEndpoint,
        seq: u64,
        debugger: NodeId,
        req: AgentRequest,
        net: &mut dyn DebugNet,
    ) -> Option<AgentReply> {
        Some(match req {
            AgentRequest::Ping => AgentReply::Ok,
            AgentRequest::SetBreakpoint { proc_id, pc } => {
                let addr = CodeAddr {
                    proc: ProcId(proc_id),
                    pc,
                };
                match node.program().op_at(addr) {
                    None => AgentReply::Error(format!("no instruction at {addr}")),
                    Some(Op::Trap(_)) => {
                        AgentReply::Error(format!("breakpoint already planted at {addr}"))
                    }
                    Some(_) => {
                        let slot = self
                            .breakpoints
                            .iter()
                            .position(Option::is_none)
                            .unwrap_or_else(|| {
                                self.breakpoints.push(None);
                                self.breakpoints.len() - 1
                            }) as u16;
                        let orig = node.program_mut().replace_op(addr, Op::Trap(slot));
                        self.breakpoints[slot as usize] = Some(Breakpoint { addr, orig });
                        AgentReply::BreakpointSet { bp: slot }
                    }
                }
            }
            AgentRequest::ClearBreakpoint { bp } => {
                match self.breakpoints.get_mut(bp as usize).and_then(Option::take) {
                    Some(b) => {
                        node.program_mut().replace_op(b.addr, b.orig);
                        AgentReply::Ok
                    }
                    None => AgentReply::Error(format!("no breakpoint #{bp}")),
                }
            }
            AgentRequest::ListBreakpoints => AgentReply::Breakpoints(
                self.breakpoints
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| b.as_ref().map(|b| (i as u16, b.addr.proc.0, b.addr.pc)))
                    .collect(),
            ),
            AgentRequest::HaltAll => {
                let session = self.shared.borrow().session;
                if let Some(session) = session {
                    self.halt_locally_and_broadcast(node, now, net, session);
                }
                AgentReply::Halted(node.pids().len())
            }
            AgentRequest::ResumeAll => {
                let halted_for = self.resume_node(node, now);
                AgentReply::Resumed {
                    halted_for_us: halted_for.as_micros(),
                }
            }
            AgentRequest::ListProcesses => AgentReply::Processes(
                node.pids()
                    .into_iter()
                    .filter_map(|pid| self.proc_view(node, pid))
                    .collect(),
            ),
            AgentRequest::ProcessState { pid } => match self.proc_view(node, Pid(pid)) {
                Some(v) => AgentReply::Process(v),
                None => AgentReply::Error(format!("no process p{pid}")),
            },
            AgentRequest::ReadStack { pid } => match self.read_stack(node, endpoint, Pid(pid)) {
                Some(frames) => AgentReply::Stack(frames),
                None => AgentReply::Error(format!("no process p{pid}")),
            },
            AgentRequest::ReadVar { pid, frame, slot } => {
                match self.local_value(node, Pid(pid), frame, slot) {
                    Ok(v) => match marshal(node.heap(), &v) {
                        Ok(w) => AgentReply::Value(w),
                        Err(e) => AgentReply::Error(e.to_string()),
                    },
                    Err(e) => AgentReply::Error(e),
                }
            }
            AgentRequest::WriteVar {
                pid,
                frame,
                slot,
                value,
            } => {
                let v = unmarshal(node.heap_mut(), &value);
                match node.process_mut(Pid(pid)).and_then(|p| p.vm_mut()) {
                    Some(vm) => match vm
                        .frames
                        .get_mut(frame as usize)
                        .and_then(|f| f.locals.get_mut(slot as usize))
                    {
                        Some(slot_ref) => {
                            *slot_ref = v;
                            AgentReply::Ok
                        }
                        None => AgentReply::Error("no such frame/slot".into()),
                    },
                    None => AgentReply::Error(format!("no process p{pid}")),
                }
            }
            AgentRequest::ReadGlobal { slot } => match node.globals().get(slot as usize).cloned() {
                Some(v) => match marshal(node.heap(), &v) {
                    Ok(w) => AgentReply::Value(w),
                    Err(e) => AgentReply::Error(e.to_string()),
                },
                None => AgentReply::Error("no such global".into()),
            },
            AgentRequest::WriteGlobal { slot, value } => {
                let v = unmarshal(node.heap_mut(), &value);
                match node.globals_mut().get_mut(slot as usize) {
                    Some(g) => {
                        *g = v;
                        AgentReply::Ok
                    }
                    None => AgentReply::Error("no such global".into()),
                }
            }
            AgentRequest::PrintVar { pid, frame, slot } => {
                let v = match self.local_value(node, Pid(pid), frame, slot) {
                    Ok(v) => v,
                    Err(e) => return Some(AgentReply::Error(e)),
                };
                // User-defined print operations run *in the user program*
                // via the agent's invocation mechanism (§3).
                if let Value::Ref(r) = &v {
                    if let pilgrim_cclu::HeapObject::Record { type_name, .. } = node.heap().get(*r)
                    {
                        let type_name = type_name.clone();
                        if let Some(printer) = node.program().print_op_for(&type_name) {
                            let invoke_pid = node.spawn_proc(
                                printer,
                                vec![v.clone()],
                                SpawnOpts {
                                    name: Some(format!("agent:print_{type_name}")),
                                    no_halt: true,
                                    redirect_output: true,
                                    ..Default::default()
                                },
                            );
                            self.pending_invokes.insert(
                                invoke_pid,
                                PendingInvoke {
                                    seq,
                                    debugger,
                                    kind: InvokeKind::Print,
                                },
                            );
                            return None; // reply when the invocation exits
                        }
                    }
                }
                AgentReply::Printed(pilgrim_cclu::format_value(node.heap(), &v))
            }
            AgentRequest::Invoke { proc, args } => {
                let Some(proc_id) = node.program().proc_by_name(&proc) else {
                    return Some(AgentReply::Error(format!("no procedure `{proc}`")));
                };
                let values: Vec<Value> =
                    args.iter().map(|w| unmarshal(node.heap_mut(), w)).collect();
                let sig = &node.program().proc(proc_id).debug.sig;
                if sig.params.len() != values.len() {
                    return Some(AgentReply::Error(format!(
                        "`{proc}` takes {} arguments",
                        sig.params.len()
                    )));
                }
                let invoke_pid = node.spawn_proc(
                    proc_id,
                    values,
                    SpawnOpts {
                        name: Some(format!("agent:{proc}")),
                        no_halt: true,
                        redirect_output: true,
                        ..Default::default()
                    },
                );
                self.pending_invokes.insert(
                    invoke_pid,
                    PendingInvoke {
                        seq,
                        debugger,
                        kind: InvokeKind::Full,
                    },
                );
                return None;
            }
            AgentRequest::StepOver { pid } => self.step_over(node, Pid(pid)),
            AgentRequest::ContinueProcess { pid } => {
                if node.release_stopped(Pid(pid)) {
                    AgentReply::Ok
                } else {
                    AgentReply::Error("process is not stopped by the debugger".into())
                }
            }
            AgentRequest::ForceRunnable { pid } => {
                if node.force_runnable(Pid(pid)) {
                    AgentReply::Ok
                } else {
                    AgentReply::Error("process cannot be made runnable".into())
                }
            }
            AgentRequest::HaltProcess { pid } => {
                if node.halt_one(Pid(pid)) {
                    AgentReply::Ok
                } else {
                    AgentReply::Error("process cannot be halted".into())
                }
            }
            AgentRequest::ResumeProcess { pid } => {
                if node.resume_one(Pid(pid)) {
                    AgentReply::Ok
                } else {
                    AgentReply::Error("process is not halted".into())
                }
            }
            AgentRequest::RpcStatus { pid } => {
                AgentReply::Rpc(endpoint.call_for_process(Pid(pid)).map(|c| RpcCallView {
                    call_id: c.call_id,
                    proc: c.proc.to_string(),
                    protocol: c.protocol.to_string(),
                    state: c.state.to_string(),
                    retries: c.retries,
                    dst: c.dst,
                }))
            }
            AgentRequest::RecentCalls => AgentReply::Recent(endpoint.recent_client_calls()),
            AgentRequest::RecentServed => AgentReply::Recent(endpoint.recent_served_calls()),
            AgentRequest::ServingProcess { call_id } => {
                AgentReply::Serving(endpoint.serving_process(call_id).map(|p| p.0))
            }
            AgentRequest::ClientProcess { call_id } => {
                AgentReply::ClientOf(endpoint.client_process(call_id).map(|p| p.0))
            }
            AgentRequest::ServerKnowledge { call_id } => {
                AgentReply::Knowledge(match endpoint.server_knowledge(call_id) {
                    pilgrim_rpc::ServerKnowledge::NeverSeen => {
                        crate::proto::KnowledgeView::NeverSeen
                    }
                    pilgrim_rpc::ServerKnowledge::Executing => {
                        crate::proto::KnowledgeView::Executing
                    }
                    pilgrim_rpc::ServerKnowledge::Replied(ok) => {
                        crate::proto::KnowledgeView::Replied(ok)
                    }
                })
            }
            AgentRequest::ReadConsole { from } => AgentReply::Console(
                node.console()
                    .iter()
                    .skip(from as usize)
                    .map(|(_, s)| s.clone())
                    .collect(),
            ),
        })
    }

    /// The §5.5 step-over dance: restore the original instruction, execute
    /// exactly one instruction in trace mode — other processes are halted,
    /// so nobody can run through the un-trapped location — and re-plant
    /// the trap.
    fn step_over(&mut self, node: &mut Node, pid: Pid) -> AgentReply {
        let bp = match node.process(pid).map(|p| p.state.clone()) {
            Some(RunState::Trapped { bp }) => bp,
            Some(other) => {
                return AgentReply::Error(format!(
                    "process is not stopped at a breakpoint ({other:?})"
                ))
            }
            None => return AgentReply::Error(format!("no process {pid}")),
        };
        let Some(b) = self.breakpoints.get(bp as usize).and_then(Option::as_ref) else {
            return AgentReply::Error(format!("unknown breakpoint #{bp}"));
        };
        let (addr, orig) = (b.addr, b.orig.clone());
        // While the trap is removed, every other process must be halted
        // (§5.5). During a breakpoint they already are; enforce anyway.
        if !node.any_halted() {
            node.halt_all();
        }
        let trap = node.program_mut().replace_op(addr, orig);
        if let Some(p) = node.process_mut(pid) {
            if let Some(vm) = p.vm_mut() {
                vm.trace_once = true;
            }
            p.state = RunState::Runnable;
        }
        node.step_one(pid);
        node.program_mut().replace_op(addr, trap);
        AgentReply::Ok
    }

    fn local_value(&self, node: &Node, pid: Pid, frame: u32, slot: u16) -> Result<Value, String> {
        let p = node
            .process(pid)
            .ok_or_else(|| format!("no process {pid}"))?;
        let vm = p.vm().ok_or("not a VM process")?;
        let f = vm
            .frames
            .get(frame as usize)
            .ok_or_else(|| format!("no frame {frame}"))?;
        f.locals
            .get(slot as usize)
            .cloned()
            .ok_or_else(|| format!("no local slot {slot}"))
    }

    fn proc_view(&self, node: &Node, pid: Pid) -> Option<ProcView> {
        let info = node.process_info(pid)?;
        let p = node.process(pid)?;
        let now = node.clock();
        let state = match &info.state {
            RunState::Runnable => StateView::Runnable,
            RunState::Sleeping { until } => StateView::Sleeping {
                remaining_ms: until.saturating_since(now).as_millis() as i64,
            },
            RunState::SemWait { sem, deadline } => StateView::SemWait {
                sem: *sem,
                remaining_ms: deadline.map(|d| d.saturating_since(now).as_millis() as i64),
            },
            RunState::MutexWait { mutex } => StateView::MutexWait { mutex: *mutex },
            RunState::RpcWait { .. } => StateView::RpcWait,
            RunState::Trapped { bp } => StateView::Trapped { bp: *bp },
            RunState::TraceStopped => StateView::TraceStopped,
            RunState::Faulted(f) => StateView::Faulted {
                message: f.to_string(),
            },
            RunState::Exited => StateView::Exited,
        };
        let _ = p;
        Some(ProcView {
            pid: pid.0,
            name: info.name,
            state,
            halted: info.halted,
            no_halt: info.no_halt,
            priority: info.priority,
            frames: info.frames as u32,
            addr: info.addr.map(|a| (a.proc.0, a.pc)),
        })
    }

    fn read_stack(
        &self,
        node: &Node,
        endpoint: &RpcEndpoint,
        pid: Pid,
    ) -> Option<Vec<FrameSummary>> {
        let p = node.process(pid)?;
        let vm = p.vm()?;
        let mut out = Vec::with_capacity(vm.frames.len());
        for (i, f) in vm.frames.iter().enumerate() {
            let kind = match f.kind {
                FrameKind::Normal => "normal",
                FrameKind::RpcStub => "rpc-stub",
                FrameKind::ServerRoot => "server-root",
                FrameKind::AgentInvoke => "agent-invoke",
            };
            let rpc = f.rpc_info.as_ref().map(|info| {
                let peer = match f.kind {
                    FrameKind::RpcStub => endpoint.call_for_process(pid).map(|c| c.dst),
                    FrameKind::ServerRoot => endpoint.caller_of(info.call_id),
                    _ => None,
                };
                RpcFrameView {
                    call_id: info.call_id,
                    remote_proc: info.remote_proc.to_string(),
                    protocol: info.protocol.to_string(),
                    state: info.state.get().to_string(),
                    retries: info.retries.get(),
                    peer,
                }
            });
            out.push(FrameSummary {
                index: i as u32,
                proc_id: f.proc.0,
                pc: f.pc,
                well_formed: f.well_formed,
                kind: kind.to_string(),
                rpc,
            });
        }
        Some(out)
    }
}

/// The `get_debuggee_status` RPC handler (§6.1): "The first result is the
/// network address of the debugger to which this node is connected. A
/// special value signifies that the node is not currently under control of
/// a debugger. The second result is the value of the node's logical
/// clock."
struct StatusHandler {
    shared: Rc<RefCell<AgentShared>>,
}

impl NativeHandler for StatusHandler {
    fn signature(&self) -> Signature {
        Signature {
            params: vec![],
            returns: vec![Type::Int, Type::Int],
        }
    }

    fn handle(
        &mut self,
        ctx: &mut HandlerCtx<'_>,
        _args: Vec<Value>,
    ) -> Result<Vec<Value>, String> {
        let debugger = self
            .shared
            .borrow()
            .debugger
            .map(|n| i64::from(n.0))
            .unwrap_or(NOT_DEBUGGED);
        let logical_ms = ctx.node.logical_now().as_millis() as i64;
        Ok(vec![Value::Int(debugger), Value::Int(logical_ms)])
    }
}

/// The "special value" returned by `get_debuggee_status` when no debugger
/// is connected.
pub const NOT_DEBUGGED: i64 = -1;

/// Extra private process body check used by [`Agent`] diagnostics.
#[allow(dead_code)]
fn is_vm(p: &ProcBody) -> bool {
    matches!(p, ProcBody::Vm(_))
}
