//! Twin-run determinism harness.
//!
//! Parallel stepping is only admissible because it is *invisible*: a world
//! stepped on N worker threads must produce byte-identical observables to
//! the same world stepped serially. This module turns that obligation into
//! a reusable test instrument — [`twin_run`] executes one scenario at 1,
//! 2, 4, and 8 stepping threads and demands equality of every artifact the
//! debugger, profiler, and replay subsystems derive from a run: the JSONL
//! trace, folded flame stacks, the metrics inventory, the rendered
//! record/replay artifact, and metric watchpoint trips (including the sync
//! index they are pinned to).
//!
//! On a mismatch the harness reports the thread count, the artifact that
//! differed, and — for traces — the first diverging event, using the same
//! structural diff the replay gate uses.

use pilgrim_sim::{first_divergence, TraceEvent};

use crate::world::{WatchTrip, World};

/// The default parallel thread counts [`twin_run`] checks against the
/// serial run.
pub const TWIN_THREADS: &[usize] = &[2, 4, 8];

/// The parallel thread counts actually under test: the
/// `PILGRIM_TWIN_THREADS` environment variable (a comma-separated list,
/// e.g. `4` or `2,8`) overrides the [`TWIN_THREADS`] ladder — CI's
/// parallel-gate matrix uses it to pin each job to a single count. Counts
/// below 2 are rejected: the serial run is always the reference, never a
/// member of the ladder.
pub fn twin_threads() -> Vec<usize> {
    let Ok(raw) = std::env::var("PILGRIM_TWIN_THREADS") else {
        return TWIN_THREADS.to_vec();
    };
    let parsed: Vec<usize> = raw
        .split(',')
        .map(|t| {
            let n = t
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("PILGRIM_TWIN_THREADS: bad thread count {t:?}"));
            assert!(n >= 2, "PILGRIM_TWIN_THREADS: counts must be >= 2, got {n}");
            n
        })
        .collect();
    assert!(!parsed.is_empty(), "PILGRIM_TWIN_THREADS is set but empty");
    parsed
}

/// Every observable artifact of one finished run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwinArtifacts {
    /// Thread count the run used.
    pub step_threads: usize,
    /// The full trace as JSON Lines ([`World::trace_jsonl`]).
    pub trace: String,
    /// Folded flame stacks ([`World::folded_stacks`]).
    pub folded_stacks: String,
    /// The metrics + VM profile inventory
    /// ([`World::observability_report`]).
    pub metrics: String,
    /// The rendered record/replay artifact ([`World::record`]).
    pub artifact: String,
    /// Armed watchpoints that tripped, with their trip records — the
    /// `sync_index` pins *which* lockstep window tripped each one.
    pub watch_trips: Vec<(u64, String, WatchTrip)>,
}

/// Captures every comparable artifact from a finished world.
pub fn capture(world: &World) -> TwinArtifacts {
    TwinArtifacts {
        step_threads: world.step_threads(),
        trace: world.trace_jsonl(),
        folded_stacks: world.folded_stacks(),
        metrics: world.observability_report(),
        artifact: world.record().render(),
        watch_trips: world.watch_trips(),
    }
}

/// Runs `scenario` serially and at each of [`twin_threads`], asserting the
/// artifacts are byte-identical, and returns the serial run's artifacts
/// for further assertions.
///
/// The closure receives the thread count and must build its world with
/// [`WorldBuilder::step_threads`] (or call [`World::set_step_threads`]
/// before driving) — the harness verifies the count actually took, so a
/// scenario that drops the parameter fails loudly instead of comparing
/// four serial runs.
///
/// [`WorldBuilder::step_threads`]: crate::WorldBuilder::step_threads
///
/// # Panics
///
/// Panics with a labelled report on the first artifact mismatch.
pub fn twin_run(name: &str, scenario: impl Fn(usize) -> World) -> TwinArtifacts {
    let serial_world = scenario(1);
    assert_eq!(
        serial_world.step_threads(),
        1,
        "twin_run({name}): the serial run must not build a pool"
    );
    let serial = capture(&serial_world);
    drop(serial_world);
    for threads in twin_threads() {
        let world = scenario(threads);
        assert_eq!(
            world.step_threads(),
            threads,
            "twin_run({name}): scenario ignored the thread-count parameter"
        );
        let parallel = capture(&world);
        compare(name, &serial, &parallel);
    }
    serial
}

/// Asserts `parallel` matches `serial` artifact-by-artifact, diffing the
/// trace structurally when it is the artifact that diverged.
fn compare(name: &str, serial: &TwinArtifacts, parallel: &TwinArtifacts) {
    let threads = parallel.step_threads;
    if serial.trace != parallel.trace {
        let expected = parse(&serial.trace);
        let actual = parse(&parallel.trace);
        match first_divergence(&expected, &actual) {
            Some(d) => panic!(
                "twin_run({name}): trace diverged at {threads} threads\n{}",
                d.report()
            ),
            None => panic!(
                "twin_run({name}): trace bytes differ at {threads} threads \
                 but events are structurally equal (formatting drift)"
            ),
        }
    }
    for (what, s, p) in [
        (
            "folded_stacks",
            &serial.folded_stacks,
            &parallel.folded_stacks,
        ),
        ("metrics report", &serial.metrics, &parallel.metrics),
        ("record() artifact", &serial.artifact, &parallel.artifact),
    ] {
        assert_eq!(
            s, p,
            "twin_run({name}): {what} differs between serial and {threads}-thread runs"
        );
    }
    assert_eq!(
        serial.watch_trips, parallel.watch_trips,
        "twin_run({name}): watch trips differ between serial and {threads}-thread runs"
    );
}

fn parse(trace: &str) -> Vec<TraceEvent> {
    TraceEvent::parse_jsonl(trace).expect("twin traces parse as JSONL")
}
