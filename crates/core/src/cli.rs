//! A textual command interface for the debugger — the "user interface"
//! half of the debugger proper (§3).
//!
//! [`DebugCli::exec`] parses one command line, performs it against the
//! [`World`], and returns the rendered output, so a debugging session can
//! be driven interactively, from a script, or from tests. Every command
//! maps onto the same agent requests the programmatic API uses; nothing
//! here has private access to the target nodes.
//!
//! ```text
//! pilgrim> connect 0 1 2
//! connected session#1001 to nodes [0, 1, 2]
//! pilgrim> break 1:2
//! breakpoint #0 at node1 line 2
//! pilgrim> run 0 main
//! started p1 on node0
//! pilgrim> wait-stop
//! breakpoint #0 hit on node1 p1 in price at line 2
//! ```

use pilgrim_rpc::WireValue;
use pilgrim_sim::{SimDuration, SpanId};

use crate::debugger::DebugEvent;
use crate::proto::{AgentReply, AgentRequest, StateView};
use crate::world::{DebugError, World};

/// A scriptable debugger command interpreter.
#[derive(Debug, Default)]
pub struct DebugCli {
    /// The most recently reported stop, so `bt`/`print` can default to it.
    focus: Option<(u32, u64)>,
    /// Watch trips already reported by `wait`, so each trip prints once.
    reported_trips: Vec<u64>,
}

impl DebugCli {
    /// Creates a fresh interpreter.
    pub fn new() -> DebugCli {
        DebugCli::default()
    }

    /// The process the CLI is focused on (set by stops and `focus`).
    pub fn focus(&self) -> Option<(u32, u64)> {
        self.focus
    }

    /// Executes every non-empty, non-comment line of `script`, returning
    /// the combined transcript (command echoes included).
    pub fn exec_script(&mut self, world: &mut World, script: &str) -> String {
        let mut out = String::new();
        for line in script.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            out.push_str(&format!("pilgrim> {line}\n"));
            out.push_str(&self.exec(world, line));
            out.push('\n');
        }
        out
    }

    /// Executes one command line and returns its output.
    pub fn exec(&mut self, world: &mut World, line: &str) -> String {
        match self.dispatch(world, line) {
            Ok(s) => s,
            Err(e) => format!("error: {e}"),
        }
    }

    fn dispatch(&mut self, world: &mut World, line: &str) -> Result<String, DebugError> {
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else {
            return Ok(String::new());
        };
        let args: Vec<&str> = parts.collect();
        match cmd {
            "help" => Ok(HELP.trim().to_string()),
            "connect" | "connect!" => {
                let nodes: Vec<u32> = if args.is_empty() {
                    (0..world.user_nodes()).collect()
                } else {
                    args.iter().filter_map(|a| a.parse().ok()).collect()
                };
                let session = world.debug_connect(&nodes, cmd == "connect!")?;
                Ok(format!("connected {session} to nodes {nodes:?}"))
            }
            "disconnect" => {
                world.debug_disconnect()?;
                Ok("disconnected; the program continues".into())
            }
            "break" => {
                // break <node>:<line>  or  break <node> <proc>
                if let Some(spec) = args.first() {
                    if let Some((n, l)) = spec.split_once(':') {
                        let node: u32 = parse(n, "node")?;
                        let line: u32 = parse(l, "line")?;
                        let bp = world.break_at_line(node, line)?;
                        return Ok(format!("breakpoint #{bp} at node{node} line {line}"));
                    }
                    if let Some(proc) = args.get(1) {
                        let node: u32 = parse(spec, "node")?;
                        let bp = world.break_at_proc(node, proc)?;
                        return Ok(format!("breakpoint #{bp} at node{node} proc {proc}"));
                    }
                }
                Err(usage("break <node>:<line> | break <node> <proc>"))
            }
            "clear" => {
                let node: u32 = parse(args.first().copied().unwrap_or(""), "node")?;
                let bp: u16 = parse(args.get(1).copied().unwrap_or(""), "breakpoint")?;
                world.clear_breakpoint(node, bp)?;
                Ok(format!("breakpoint #{bp} cleared"))
            }
            "breakpoints" => {
                let d = world.debugger().ok_or(DebugError::NoDebugger)?;
                let mut out = String::new();
                for b in d.breakpoints() {
                    out.push_str(&format!(
                        "#{} on {} at {}{}\n",
                        b.bp,
                        b.node,
                        b.addr,
                        b.line.map(|l| format!(" (line {l})")).unwrap_or_default()
                    ));
                }
                if out.is_empty() {
                    out = "no breakpoints".into();
                }
                Ok(out.trim_end().to_string())
            }
            "run" => {
                let node: u32 = parse(args.first().copied().unwrap_or(""), "node")?;
                let proc = args
                    .get(1)
                    .copied()
                    .ok_or_else(|| usage("run <node> <proc> [args]"))?;
                let values = args[2..].iter().map(|a| parse_value(a)).collect();
                let pid = world
                    .try_spawn(node, proc, values)
                    .map_err(|e| DebugError::Source(e.to_string()))?;
                Ok(format!("started p{} on node{node}", pid.0))
            }
            "wait" => {
                let ms: u64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(1_000);
                world.run_for(SimDuration::from_millis(ms));
                let mut out = format!("ran {ms}ms (now {})", world.now());
                for (id, expr, trip) in world.watch_trips() {
                    if self.reported_trips.contains(&id) {
                        continue;
                    }
                    self.reported_trips.push(id);
                    out.push_str(&format!(
                        "\nwatch #{id} tripped: {expr} (observed {}) at {}{}",
                        trip.value,
                        trip.at,
                        match trip.span {
                            Some(s) => format!(", span s{}", s.0),
                            None => String::new(),
                        }
                    ));
                }
                Ok(out)
            }
            "wait-stop" => {
                let ms: u64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(5_000);
                let ev = world.wait_for_stop(SimDuration::from_millis(ms))?;
                Ok(self.render_event(ev))
            }
            "events" => {
                let evs = world.debug_events();
                if evs.is_empty() {
                    return Ok("no events".into());
                }
                Ok(evs
                    .into_iter()
                    .map(|e| self.render_event(e))
                    .collect::<Vec<_>>()
                    .join("\n"))
            }
            "halt" => {
                let node: u32 = parse(args.first().copied().unwrap_or("0"), "node")?;
                let n = world.debug_halt_all(node)?;
                Ok(format!("halted via node{node} ({n} processes there)"))
            }
            "resume" => {
                world.debug_resume_all()?;
                Ok("cohort resumed; logical clocks adjusted".into())
            }
            "cont" => {
                let (node, pid) = self.target(&args)?;
                world.continue_process(node, pid)?;
                world.debug_resume_all()?;
                Ok(format!("p{pid} continued, cohort resumed"))
            }
            "step" => {
                let (node, pid) = self.target(&args)?;
                world.step_over(node, pid)?;
                let bt = world.backtrace(node, pid)?;
                let top = bt
                    .iter()
                    .rev()
                    .find(|f| f.well_formed && f.kind == "normal" || f.kind == "server-root");
                Ok(match top {
                    Some(f) => format!("stepped: now at {f}"),
                    None => "stepped".into(),
                })
            }
            "ps" => {
                let node: u32 = parse(args.first().copied().unwrap_or("0"), "node")?;
                let procs = world.debug_processes(node)?;
                let mut out = String::new();
                for p in procs {
                    out.push_str(&format!(
                        "p{:<4} {:<18} {}{}{}\n",
                        p.pid,
                        p.name,
                        render_state(&p.state),
                        if p.halted { " [halted]" } else { "" },
                        if p.no_halt { " [no-halt]" } else { "" },
                    ));
                }
                Ok(out.trim_end().to_string())
            }
            "bt" | "btd" => {
                let (node, pid) = self.target(&args)?;
                let frames = if cmd == "btd" {
                    world.distributed_backtrace(node, pid)?
                } else {
                    world.backtrace(node, pid)?
                };
                Ok(frames
                    .iter()
                    .map(|f| format!("  {f}"))
                    .collect::<Vec<_>>()
                    .join("\n"))
            }
            "print" => {
                let (node, pid, var) = self.target_var(&args)?;
                let rendered = world.inspect(node, pid, &var)?;
                Ok(format!("{var} = {rendered}"))
            }
            "set" => {
                let (node, pid, var) = self.target_var(&args[..args.len().saturating_sub(1)])?;
                let raw = args
                    .last()
                    .ok_or_else(|| usage("set [node pid] <var> <value>"))?;
                world.set_variable(node, pid, &var, parse_wire(raw))?;
                Ok(format!("{var} := {raw}"))
            }
            "rpc" => {
                let (node, pid) = self.target(&args)?;
                match world.rpc_status(node, pid)? {
                    Some(c) => Ok(format!(
                        "call#{} {} -> {} [{}] state={} retries={}",
                        c.call_id, c.proc, c.dst, c.protocol, c.state, c.retries
                    )),
                    None => Ok(format!("p{pid} is not in a remote call")),
                }
            }
            "recent" => {
                let node: u32 = parse(args.first().copied().unwrap_or("0"), "node")?;
                let recent = world.recent_calls(node)?;
                if recent.is_empty() {
                    return Ok("no recent calls".into());
                }
                Ok(recent
                    .iter()
                    .map(|(id, ok)| {
                        format!("call#{id}: {}", if *ok { "succeeded" } else { "FAILED" })
                    })
                    .collect::<Vec<_>>()
                    .join("\n"))
            }
            "diagnose" => {
                let node: u32 = parse(args.first().copied().unwrap_or(""), "server node")?;
                let call_id: u64 = parse(args.get(1).copied().unwrap_or(""), "call id")?;
                let d = world.diagnose_maybe_failure(node, call_id)?;
                Ok(format!("call#{call_id}: {d:?}"))
            }
            "time" => {
                let node: u32 = parse(args.first().copied().unwrap_or("0"), "node")?;
                let n = world.node(node);
                Ok(format!(
                    "node{node}: real {} | logical {} | delta {}",
                    n.clock(),
                    n.logical_now(),
                    n.delta()
                ))
            }
            "console" => {
                let node: u32 = parse(args.first().copied().unwrap_or("0"), "node")?;
                let out = world.console(node);
                if out.is_empty() {
                    return Ok("(empty)".into());
                }
                Ok(out.join("\n"))
            }
            "invoke" => {
                let node: u32 = parse(args.first().copied().unwrap_or(""), "node")?;
                let proc = args
                    .get(1)
                    .copied()
                    .ok_or_else(|| usage("invoke <node> <proc> [args]"))?;
                let values: Vec<WireValue> = args[2..].iter().map(|a| parse_wire(a)).collect();
                match world.debug_request(
                    node,
                    AgentRequest::Invoke {
                        proc: proc.to_string(),
                        args: values,
                    },
                )? {
                    AgentReply::Invoked { results, output } => {
                        let rendered: Vec<String> =
                            results.iter().map(crate::world::render_wire).collect();
                        let mut s = format!("returned ({})", rendered.join(", "));
                        if !output.is_empty() {
                            s.push_str(&format!("\noutput: {output}"));
                        }
                        Ok(s)
                    }
                    other => Err(DebugError::Protocol(format!("unexpected reply {other:?}"))),
                }
            }
            "stats" => Ok(world.observability_report().trim_end().to_string()),
            "profile" => {
                // profile          caller->callee edge table + time ledgers
                // profile fold     folded-stack lines (flamegraph input)
                if args.first() == Some(&"fold") {
                    let folded = world.folded_stacks();
                    if folded.is_empty() {
                        return Ok("no profile data (build the world with profile_vm on)".into());
                    }
                    return Ok(folded.trim_end().to_string());
                }
                let mut out = String::new();
                for i in 0..world.user_nodes() {
                    let n = world.node(i);
                    for (caller, callee, instr, cost) in n.call_edges() {
                        let caller = caller.unwrap_or_else(|| "(root)".to_string());
                        out.push_str(&format!(
                            "node{i} {caller}->{callee}: {instr} instr {cost}us\n"
                        ));
                    }
                    for (pid, name, _span, ledger) in n.time_ledgers() {
                        out.push_str(&format!("node{i} {pid} {name}: {}\n", ledger.render()));
                    }
                }
                if out.is_empty() {
                    return Ok("no profile data (build the world with profile_vm on)".into());
                }
                Ok(out.trim_end().to_string())
            }
            "watch" => {
                if args.is_empty() {
                    let watches = world.watches();
                    if watches.is_empty() {
                        return Ok("no watchpoints".into());
                    }
                    return Ok(watches
                        .iter()
                        .map(|(id, expr, trip)| match trip {
                            Some(t) => {
                                format!("#{id} {expr} — TRIPPED at {} (observed {})", t.at, t.value)
                            }
                            None => format!("#{id} {expr} — armed"),
                        })
                        .collect::<Vec<_>>()
                        .join("\n"));
                }
                let expr = args.join(" ");
                let id = world.arm_watch(&expr).map_err(DebugError::Source)?;
                Ok(format!("watch #{id} armed: {expr}"))
            }
            "unwatch" => {
                let id: u64 = parse(args.first().copied().unwrap_or(""), "watch id")?;
                if world.clear_watch(id) {
                    Ok(format!("watch #{id} cleared"))
                } else {
                    Ok(format!("no watch #{id}"))
                }
            }
            "trace" => {
                // trace [k] | trace span <id> | trace call <id>
                match args.first().copied() {
                    Some("span") => {
                        let id: u64 = parse(args.get(1).copied().unwrap_or(""), "span id")?;
                        let evs = world.tracer().events_for_span(SpanId(id));
                        if evs.is_empty() {
                            return Ok(format!("no events for span s{id}"));
                        }
                        Ok(evs
                            .iter()
                            .map(|e| e.to_string())
                            .collect::<Vec<_>>()
                            .join("\n"))
                    }
                    Some("call") => {
                        let id: u64 = parse(args.get(1).copied().unwrap_or(""), "call id")?;
                        let Some(span) = world.span_of_call(id) else {
                            return Ok(format!("no trace for call {id}"));
                        };
                        Ok(world
                            .tracer()
                            .events_for_span(span)
                            .iter()
                            .map(|e| e.to_string())
                            .collect::<Vec<_>>()
                            .join("\n"))
                    }
                    other => {
                        let k: usize = other.and_then(|a| a.parse().ok()).unwrap_or(10);
                        let evs = world.tracer().events();
                        let tail = &evs[evs.len().saturating_sub(k)..];
                        if tail.is_empty() {
                            return Ok("trace is empty".into());
                        }
                        Ok(tail
                            .iter()
                            .map(|e| e.to_string())
                            .collect::<Vec<_>>()
                            .join("\n"))
                    }
                }
            }
            "record" => {
                let path = args
                    .first()
                    .copied()
                    .ok_or_else(|| usage("record <path>"))?;
                let artifact = world.record();
                let stimuli = artifact.stimuli.len();
                let events = world.tracer().events().len();
                std::fs::write(path, artifact.render())
                    .map_err(|e| DebugError::Source(format!("cannot write {path}: {e}")))?;
                Ok(format!(
                    "recorded {stimuli} stimuli and {events} trace events to {path}"
                ))
            }
            "replay" => {
                let path = args
                    .first()
                    .copied()
                    .ok_or_else(|| usage("replay <path>"))?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| DebugError::Source(format!("cannot read {path}: {e}")))?;
                let report = crate::replay::replay_artifact(&text)
                    .map_err(|e| DebugError::Source(e.to_string()))?;
                Ok(match report.divergence {
                    None => format!(
                        "replayed {} events from {path}: traces identical{}",
                        report.recorded_events,
                        if report.byte_identical {
                            " (byte-for-byte)"
                        } else {
                            ""
                        }
                    ),
                    Some(d) => format!("DIVERGENCE replaying {path}:\n{}", d.report()),
                })
            }
            "tsdb" => {
                // tsdb                 series inventory
                // tsdb <metric> [w]    windowed history, w samples/window
                let Some(metric) = args.first().copied() else {
                    return Ok(world.tsdb_summary().trim_end().to_string());
                };
                let window: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(1);
                Ok(world.tsdb_report(metric, window).trim_end().to_string())
            }
            "path" => {
                let span: u64 = parse(args.first().copied().unwrap_or(""), "span id")?;
                Ok(world.span_path_report(span).trim_end().to_string())
            }
            "slow" => {
                let k: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(5);
                Ok(world.slowest_report(k).trim_end().to_string())
            }
            "critical" => Ok(world.critical_path_report().trim_end().to_string()),
            "blackbox" => {
                // blackbox             flight-recorder status + last auto dump
                // blackbox dump [path] freeze a snapshot now (print or save)
                if args.first() == Some(&"dump") {
                    let snap = world.blackbox_snapshot("manual");
                    let events = snap.decode_events().map(|e| e.len()).unwrap_or(0);
                    return Ok(match args.get(1) {
                        Some(path) => {
                            std::fs::write(path, snap.render()).map_err(|e| {
                                DebugError::Source(format!("cannot write {path}: {e}"))
                            })?;
                            format!("blackbox: {events} ring events dumped to {path}")
                        }
                        None => snap.render().trim_end().to_string(),
                    });
                }
                let mut out = format!(
                    "flight recorder: {} events in ring (budget {})",
                    world.tracer().blackbox_len(),
                    world.tracer().blackbox_capacity(),
                );
                match world.blackbox_last() {
                    Some(last) => {
                        let snap = crate::blackbox::BlackboxSnapshot::parse(last)
                            .map_err(DebugError::Source)?;
                        out.push_str(&format!(
                            "\nlast dump: {} at {} (sync point {})",
                            snap.reason, snap.at, snap.sync_index
                        ));
                    }
                    None => out.push_str("\nno automatic dump yet"),
                }
                Ok(out)
            }
            "focus" => {
                let node: u32 = parse(args.first().copied().unwrap_or(""), "node")?;
                let pid: u64 = parse(args.get(1).copied().unwrap_or(""), "pid")?;
                self.focus = Some((node, pid));
                Ok(format!("focused on node{node} p{pid}"))
            }
            other => Err(usage(&format!("unknown command `{other}` (try `help`)"))),
        }
    }

    fn render_event(&mut self, ev: DebugEvent) -> String {
        match ev {
            DebugEvent::BreakpointHit {
                node,
                pid,
                bp,
                line,
                proc,
                at,
            } => {
                self.focus = Some((node.0, pid));
                format!(
                    "breakpoint #{bp} hit on {node} p{pid} in {proc}{} (t = {at})",
                    line.map(|l| format!(" at line {l}")).unwrap_or_default()
                )
            }
            DebugEvent::ProcessFaulted {
                node,
                pid,
                message,
                at,
            } => {
                self.focus = Some((node.0, pid));
                format!("FAULT on {node} p{pid}: {message} (t = {at})")
            }
        }
    }

    /// `<node> <pid>` from args, or the current focus.
    fn target(&self, args: &[&str]) -> Result<(u32, u64), DebugError> {
        if args.len() >= 2 {
            if let (Ok(n), Ok(p)) = (args[0].parse(), args[1].parse()) {
                return Ok((n, p));
            }
        }
        self.focus
            .ok_or_else(|| usage("no focused process; pass <node> <pid> or hit a breakpoint"))
    }

    /// `[node pid] <var>` from args, defaulting to the focus.
    fn target_var(&self, args: &[&str]) -> Result<(u32, u64, String), DebugError> {
        match args.len() {
            0 => Err(usage("missing variable name")),
            1 => {
                let (n, p) = self
                    .focus
                    .ok_or_else(|| usage("no focused process; pass <node> <pid> <var>"))?;
                Ok((n, p, args[0].to_string()))
            }
            _ => {
                let n: u32 = parse(args[0], "node")?;
                let p: u64 = parse(args[1], "pid")?;
                let var = args
                    .get(2)
                    .copied()
                    .ok_or_else(|| usage("missing variable name"))?;
                Ok((n, p, var.to_string()))
            }
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, DebugError> {
    s.parse()
        .map_err(|_| DebugError::Source(format!("cannot parse `{s}` as {what}")))
}

fn usage(msg: &str) -> DebugError {
    DebugError::Source(msg.to_string())
}

fn parse_value(s: &str) -> pilgrim_cclu::Value {
    if let Ok(i) = s.parse::<i64>() {
        return pilgrim_cclu::Value::Int(i);
    }
    match s {
        "true" => pilgrim_cclu::Value::Bool(true),
        "false" => pilgrim_cclu::Value::Bool(false),
        other => pilgrim_cclu::Value::Str(other.trim_matches('"').into()),
    }
}

fn parse_wire(s: &str) -> WireValue {
    if let Ok(i) = s.parse::<i64>() {
        return WireValue::Int(i);
    }
    match s {
        "true" => WireValue::Bool(true),
        "false" => WireValue::Bool(false),
        other => WireValue::Str(other.trim_matches('"').into()),
    }
}

fn render_state(s: &StateView) -> String {
    match s {
        StateView::Runnable => "runnable".into(),
        StateView::Sleeping { remaining_ms } => format!("sleeping ({remaining_ms}ms left)"),
        StateView::SemWait { sem, remaining_ms } => match remaining_ms {
            Some(ms) => format!("waiting on sem#{sem} ({ms}ms left)"),
            None => format!("waiting on sem#{sem}"),
        },
        StateView::MutexWait { mutex } => format!("waiting on mutex#{mutex}"),
        StateView::RpcWait => "blocked in a remote call".into(),
        StateView::Trapped { bp } => format!("stopped at breakpoint #{bp}"),
        StateView::TraceStopped => "stopped after step".into(),
        StateView::Faulted { message } => format!("FAULTED: {message}"),
        StateView::Exited => "exited".into(),
    }
}

const HELP: &str = "
commands:
  connect [nodes..]      connect the debugger (connect! = forcible, §3)
  disconnect             end the session (clears breakpoints, resets clocks)
  break <n>:<line>       plant a breakpoint at a source line
  break <n> <proc>       plant a breakpoint at a procedure entry
  clear <n> <bp>         remove a breakpoint
  breakpoints            list planted breakpoints
  run <n> <proc> [args]  start a process
  wait [ms]              let the program run
  wait-stop [ms]         run until a breakpoint/fault fires
  events                 drain pending stop events
  halt [n]               halt the whole cohort via node n's agent (§5.2)
  resume                 resume the cohort (folds halt time into the deltas)
  cont [n pid]           step the focused process over its trap and resume
  step [n pid]           single-step over the breakpoint (§5.5)
  ps [n]                 list processes with supervisor states (§5.4)
  bt [n pid]             backtrace
  btd [n pid]            distributed backtrace across nodes (Figure 1)
  print [n pid] <var>    render a variable via its print operation (§3)
  set [n pid] <var> <v>  modify a variable (type-checked in the debugger)
  rpc [n pid]            the in-progress call's information block (§4.3)
  recent [n]             the ten-slot cyclic buffer of recent calls
  diagnose <n> <call>    lost call vs lost reply (§4.1)
  time [n]               real/logical clocks and the delta (§5.2)
  console [n]            program output so far
  invoke <n> <proc> ..   run a procedure in the user program (§3)
  stats                  metrics registry + scheduler snapshot
  profile                caller->callee edges + per-process time ledgers
  profile fold           folded-stack profile (flamegraph input format)
  watch [expr]           arm a metric watchpoint (e.g. `watch rpc.failed > 0`);
                         no args lists watches. The world halts when one trips
  unwatch <id>           disarm a watchpoint
  trace [k]              last k trace events (default 10)
  trace span <id>        causal timeline of one span across nodes
  trace call <id>        span timeline of an RPC call, by call id
  tsdb [metric] [w]      windowed time-series history of a metric; no args
                         lists the retained series
  path <span>            causal path to a span with per-segment attribution
  critical               the causal critical path of the whole trace
  slow [k]               the k slowest spans by attributed time (default 5)
  blackbox               flight-recorder status and the last automatic dump
  blackbox dump [path]   freeze the flight recorder into an artifact now
  record <path>          save the session's replay artifact (recipe+stimuli+trace)
  replay <path>          re-run a recorded artifact and diff the traces
  focus <n> <pid>        set the default process
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    const PROGRAM: &str = "\
bump = proc (a: int, b: int) returns (int)
 c: int := a + b
 return (c)
end
main = proc ()
 total: int := 0
 for i: int := 1 to 3 do
  total := bump(total, i)
 end
 print(total)
end";

    fn world() -> World {
        World::builder().nodes(1).program(PROGRAM).build().unwrap()
    }

    #[test]
    fn scripted_session_end_to_end() {
        let mut w = world();
        let mut cli = DebugCli::new();
        let transcript = cli.exec_script(
            &mut w,
            "# a complete session
connect
break 0:3
run 0 main
wait-stop
print c
set c 50
breakpoints
clear 0 0
cont
wait 2000
console 0",
        );
        assert!(transcript.contains("connected session#"), "{transcript}");
        assert!(
            transcript.contains("breakpoint #0 at node0 line 3"),
            "{transcript}"
        );
        assert!(transcript.contains("breakpoint #0 hit"), "{transcript}");
        assert!(transcript.contains("c = 1"), "{transcript}");
        assert!(transcript.contains("c := 50"), "{transcript}");
        // 50 + 2 + 3
        assert!(transcript.ends_with("55\n"), "{transcript}");
    }

    #[test]
    fn ps_and_time_render() {
        let mut w = world();
        let mut cli = DebugCli::new();
        cli.exec(&mut w, "connect");
        cli.exec(&mut w, "run 0 main");
        let ps = cli.exec(&mut w, "ps 0");
        assert!(ps.contains("main"), "{ps}");
        let time = cli.exec(&mut w, "time 0");
        assert!(time.contains("delta"), "{time}");
    }

    #[test]
    fn errors_are_rendered_not_panicked() {
        let mut w = world();
        let mut cli = DebugCli::new();
        assert!(cli.exec(&mut w, "florble").starts_with("error:"));
        assert!(cli.exec(&mut w, "break nonsense").starts_with("error:"));
        assert!(
            cli.exec(&mut w, "print x").starts_with("error:"),
            "no focus yet"
        );
        cli.exec(&mut w, "connect");
        assert!(cli.exec(&mut w, "break 0:999").contains("no code at line"));
    }

    #[test]
    fn help_lists_every_command() {
        let mut w = world();
        let mut cli = DebugCli::new();
        let help = cli.exec(&mut w, "help");
        for c in [
            "connect", "break", "btd", "diagnose", "invoke", "resume", "stats", "trace", "tsdb",
            "path", "critical", "slow", "blackbox",
        ] {
            assert!(help.contains(c), "help missing {c}");
        }
    }

    #[test]
    fn tsdb_and_causal_commands_render() {
        let mut w = World::builder()
            .nodes(1)
            .program(PROGRAM)
            .tsdb(true)
            .build()
            .unwrap();
        let mut cli = DebugCli::new();
        cli.exec(&mut w, "run 0 main");
        cli.exec(&mut w, "wait 2000");
        let summary = cli.exec(&mut w, "tsdb");
        assert!(summary.contains("samples retained"), "{summary}");
        let series = cli.exec(&mut w, "tsdb net.sent 4");
        assert!(series.contains("tsdb counter net.sent"), "{series}");
        assert!(cli
            .exec(&mut w, "tsdb no.such.metric")
            .contains("no series named"));
        assert!(cli.exec(&mut w, "path 999999").contains("no span 999999"));
        // A single-node run makes no RPCs, so the span DAG is empty.
        assert!(cli.exec(&mut w, "slow").contains("no spans in trace"));
        assert!(cli.exec(&mut w, "critical").contains("critical path"));
    }

    #[test]
    fn blackbox_command_reports_and_dumps() {
        let mut w = world();
        let mut cli = DebugCli::new();
        cli.exec(&mut w, "run 0 main");
        cli.exec(&mut w, "wait 2000");
        let status = cli.exec(&mut w, "blackbox");
        assert!(status.contains("flight recorder:"), "{status}");
        assert!(status.contains("no automatic dump yet"), "{status}");
        let dumped = cli.exec(&mut w, "blackbox dump");
        assert!(
            dumped.contains("\"format\": \"pilgrim-blackbox\""),
            "{dumped}"
        );
        let path = std::env::temp_dir().join("pilgrim-cli-blackbox-test.json");
        let path = path.to_str().unwrap().to_string();
        let saved = cli.exec(&mut w, &format!("blackbox dump {path}"));
        assert!(saved.contains("dumped to"), "{saved}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(crate::blackbox::BlackboxSnapshot::parse(&text).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stats_and_trace_render_observability() {
        let mut w = world();
        let mut cli = DebugCli::new();
        cli.exec(&mut w, "run 0 main");
        cli.exec(&mut w, "wait 2000");
        let stats = cli.exec(&mut w, "stats");
        assert!(stats.contains("counter net.sent"), "{stats}");
        assert!(stats.contains("gauge sched.node0.steps"), "{stats}");
        let trace = cli.exec(&mut w, "trace 3");
        assert!(!trace.starts_with("error:"), "{trace}");
        assert!(cli
            .exec(&mut w, "trace span 999999")
            .contains("no events for span"),);
    }

    #[test]
    fn record_and_replay_round_trip_from_the_cli() {
        let path = std::env::temp_dir().join("pilgrim-cli-replay-test.json");
        let path = path.to_str().unwrap().to_string();
        let mut w = world();
        let mut cli = DebugCli::new();
        cli.exec(&mut w, "run 0 main");
        cli.exec(&mut w, "wait 2000");
        let rec = cli.exec(&mut w, &format!("record {path}"));
        assert!(rec.contains("recorded"), "{rec}");
        let rep = cli.exec(&mut w, &format!("replay {path}"));
        assert!(rep.contains("traces identical (byte-for-byte)"), "{rep}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn profile_and_watch_commands() {
        let mut w = World::builder()
            .nodes(1)
            .program(PROGRAM)
            .node_config(pilgrim_mayflower::NodeConfig {
                profile_vm: true,
                ..Default::default()
            })
            .build()
            .unwrap();
        let mut cli = DebugCli::new();
        cli.exec(&mut w, "run 0 main");
        cli.exec(&mut w, "wait 2000");
        let fold = cli.exec(&mut w, "profile fold");
        assert!(fold.contains("node0;main"), "{fold}");
        let prof = cli.exec(&mut w, "profile");
        assert!(prof.contains("main->bump:"), "{prof}");
        assert!(prof.contains("exec "), "{prof}");
        let armed = cli.exec(&mut w, "watch rpc.failed > 0");
        assert!(armed.contains("watch #1 armed: rpc.failed > 0"), "{armed}");
        let listed = cli.exec(&mut w, "watch");
        assert!(listed.contains("#1 rpc.failed > 0 — armed"), "{listed}");
        assert!(cli.exec(&mut w, "unwatch 1").contains("cleared"));
        assert!(cli.exec(&mut w, "unwatch 9").contains("no watch #9"));
        assert!(cli.exec(&mut w, "watch bogus").starts_with("error:"));
    }

    #[test]
    fn profile_without_profiling_explains_itself() {
        let mut w = world();
        let mut cli = DebugCli::new();
        cli.exec(&mut w, "run 0 main");
        cli.exec(&mut w, "wait 2000");
        assert!(cli.exec(&mut w, "profile").contains("no profile data"));
        assert!(cli.exec(&mut w, "profile fold").contains("no profile data"));
    }

    #[test]
    fn invoke_runs_in_the_user_program() {
        let mut w = world();
        let mut cli = DebugCli::new();
        cli.exec(&mut w, "connect");
        let out = cli.exec(&mut w, "invoke 0 bump 20 22");
        assert!(out.contains("returned (42)"), "{out}");
    }
}
