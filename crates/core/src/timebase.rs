//! Time-consistency bookkeeping: the debugger's breakpoint log and the
//! `convert_debuggee_time` support procedure (§6.1).
//!
//! "The debugger maintains a log of the breakpoints which have occurred
//! and for each how long the program's execution was interrupted. The sum
//! of these values will be almost the same as the logical time deltas at
//! all nodes of the program."

use pilgrim_sim::{SimDuration, SimTime};

use crate::proto::ConvertedTime;

/// One completed interruption: `[start, end)` in real time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaltRecord {
    /// When the program was halted.
    pub start: SimTime,
    /// When it resumed.
    pub end: SimTime,
}

impl HaltRecord {
    /// Length of the interruption.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// The debugger's log of breakpoints and how long each interrupted the
/// program.
#[derive(Debug, Clone, Default)]
pub struct BreakpointLog {
    records: Vec<HaltRecord>,
    open: Option<SimTime>,
}

impl BreakpointLog {
    /// An empty log.
    pub fn new() -> BreakpointLog {
        BreakpointLog::default()
    }

    /// Marks the program halted at `start`. Ignored if a halt is already
    /// open (a second breakpoint while halted is the same interruption).
    pub fn begin_halt(&mut self, start: SimTime) {
        if self.open.is_none() {
            self.open = Some(start);
        }
    }

    /// Marks the program resumed at `end`.
    pub fn end_halt(&mut self, end: SimTime) {
        if let Some(start) = self.open.take() {
            self.records.push(HaltRecord {
                start,
                end: end.max(start),
            });
        }
    }

    /// Closes the open interruption with a measured duration (the agents
    /// report exactly how long they were halted).
    pub fn end_halt_after(&mut self, duration: SimDuration) {
        if let Some(start) = self.open.take() {
            self.records.push(HaltRecord {
                start,
                end: start + duration,
            });
        }
    }

    /// Is the program currently halted?
    pub fn is_halted(&self) -> bool {
        self.open.is_some()
    }

    /// Completed interruptions, oldest first.
    pub fn records(&self) -> &[HaltRecord] {
        &self.records
    }

    /// Total time the program has spent halted, up to `now`.
    pub fn total_halted(&self, now: SimTime) -> SimDuration {
        let mut sum: SimDuration = self
            .records
            .iter()
            .map(HaltRecord::duration)
            .fold(SimDuration::ZERO, |a, b| a + b);
        if let Some(start) = self.open {
            sum += now.saturating_since(start);
        }
        sum
    }

    /// The `convert_debuggee_time` support procedure (§6.1): "takes a
    /// date/time value for some point in the past and returns the
    /// equivalent client logical date/time."
    ///
    /// Real time that elapsed while the program was halted does not exist
    /// on the client's logical time scale, so the conversion subtracts
    /// every halted interval that finished before `real`, plus the elapsed
    /// part of an interval containing `real`.
    pub fn convert_debuggee_time(&self, real: SimTime) -> ConvertedTime {
        let mut subtracted = SimDuration::ZERO;
        for r in &self.records {
            if r.end <= real {
                subtracted += r.duration();
            } else if r.start < real {
                subtracted += real.saturating_since(r.start);
            }
        }
        if let Some(start) = self.open {
            if start < real {
                subtracted += real.saturating_since(start);
            }
        }
        ConvertedTime {
            logical: real - subtracted,
            subtracted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }
    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn identity_without_halts() {
        let log = BreakpointLog::new();
        let c = log.convert_debuggee_time(t(500));
        assert_eq!(c.logical, t(500));
        assert_eq!(c.subtracted, SimDuration::ZERO);
    }

    #[test]
    fn subtracts_completed_halts_before_the_instant() {
        let mut log = BreakpointLog::new();
        log.begin_halt(t(100));
        log.end_halt(t(150));
        log.begin_halt(t(300));
        log.end_halt(t(400));
        // A time after both halts loses both durations.
        assert_eq!(log.convert_debuggee_time(t(500)).logical, t(500 - 50 - 100));
        // A time before any halt is unchanged.
        assert_eq!(log.convert_debuggee_time(t(90)).logical, t(90));
        // A time between the halts loses only the first.
        assert_eq!(log.convert_debuggee_time(t(200)).logical, t(150));
    }

    #[test]
    fn partial_overlap_inside_a_halt() {
        let mut log = BreakpointLog::new();
        log.begin_halt(t(100));
        log.end_halt(t(200));
        // An instant inside the halt maps to the halt start.
        assert_eq!(log.convert_debuggee_time(t(160)).logical, t(100));
    }

    #[test]
    fn open_halt_counts_up_to_now() {
        let mut log = BreakpointLog::new();
        log.begin_halt(t(100));
        assert!(log.is_halted());
        assert_eq!(log.total_halted(t(130)), d(30));
        assert_eq!(log.convert_debuggee_time(t(130)).logical, t(100));
        log.end_halt(t(150));
        assert!(!log.is_halted());
        assert_eq!(log.total_halted(t(1_000)), d(50));
    }

    #[test]
    fn nested_begin_is_one_interruption() {
        let mut log = BreakpointLog::new();
        log.begin_halt(t(100));
        log.begin_halt(t(120)); // second breakpoint while halted
        log.end_halt(t(200));
        assert_eq!(log.records().len(), 1);
        assert_eq!(log.records()[0].duration(), d(100));
    }

    #[test]
    fn conversion_matches_node_delta_model() {
        // The sum of log durations "will be almost the same as the logical
        // time deltas at all nodes": for a time after all halts, logical =
        // real - total.
        let mut log = BreakpointLog::new();
        for i in 0..5u64 {
            log.begin_halt(t(1_000 * (i + 1)));
            log.end_halt(t(1_000 * (i + 1) + 250));
        }
        let now = t(10_000);
        let c = log.convert_debuggee_time(now);
        assert_eq!(c.subtracted, log.total_halted(now));
        assert_eq!(c.logical, now - log.total_halted(now));
    }
}
