//! The debugger–agent wire protocol.
//!
//! Pilgrim is itself a distributed program (§3): the debugger proper runs
//! on its own node and talks to the agents over the network. Design rules
//! from the paper, all honoured here:
//!
//! * every interaction carries the **session identifier**, "a unique but
//!   guessable number" generated at the start of the session;
//! * "expressing each logical request from the debugger as a single
//!   network interaction improves the overall performance" — one request
//!   packet, one reply packet;
//! * the agent side stays dumb: requests are phrased in machine terms
//!   (procedure ids, pcs, slots). All type checking and source mapping
//!   happens in the debugger proper, which owns the compiler's
//!   source-to-object tables;
//! * halt/resume broadcasts travel agent-to-agent (§5.2).

use pilgrim_ring::NodeId;
use pilgrim_rpc::WireValue;
use pilgrim_sim::{SimDuration, SimTime};

/// A debugging-session identifier. The paper calls for "a unique but
/// guessable number" — uniqueness for correctness, with authentication
/// explicitly out of scope (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// A message on the debugger–agent (or agent–agent) channel.
#[derive(Debug, Clone)]
pub enum DebugMsg {
    /// Debugger → agent: begin a session. `force` implements forcible
    /// connection: the existing session is abandoned and all breakpoints
    /// cleared (§3).
    Connect {
        /// The new session.
        session: SessionId,
        /// Evict any existing session.
        force: bool,
        /// Where the debugger lives.
        debugger: NodeId,
        /// Every node under control of this debugger (so the agent knows
        /// whom to send halt broadcasts to).
        cohort: Vec<NodeId>,
    },
    /// Agent → debugger: connection outcome.
    ConnectReply {
        /// Echoed session.
        session: SessionId,
        /// Whether the agent accepted.
        accepted: bool,
        /// The responding node.
        node: NodeId,
    },
    /// Debugger → agent: end the session (the node continues executing,
    /// which §3 notes "is usually unwise" if state was modified).
    Disconnect {
        /// The session being closed.
        session: SessionId,
    },
    /// Debugger → agent: one logical request.
    Request {
        /// Session (validated by the agent).
        session: SessionId,
        /// Request sequence number, echoed in the reply.
        seq: u64,
        /// The request body.
        req: AgentRequest,
    },
    /// Agent → debugger: the reply to `seq`.
    Reply {
        /// Echoed session.
        session: SessionId,
        /// Echoed sequence number.
        seq: u64,
        /// The reply body.
        reply: AgentReply,
    },
    /// Agent → agent: halt your processes (§5.2). Sent serially over the
    /// ring with NACK-retransmission.
    HaltBroadcast {
        /// Session.
        session: SessionId,
        /// The node whose breakpoint triggered the halt.
        origin: NodeId,
    },
    /// Agent → agent: resume; each receiving agent adds its own measured
    /// halt duration to its logical-clock delta (§5.2).
    ResumeBroadcast {
        /// Session.
        session: SessionId,
        /// The node that initiated the resume.
        origin: NodeId,
    },
    /// Agent → debugger: an asynchronous event (breakpoint hit, fault).
    Event {
        /// Session.
        session: SessionId,
        /// The event.
        event: AgentEvent,
    },
}

impl DebugMsg {
    /// Approximate encoded size, for network-latency modelling.
    pub fn wire_bytes(&self) -> usize {
        match self {
            DebugMsg::Connect { cohort, .. } => 40 + cohort.len() * 4,
            DebugMsg::ConnectReply { .. } => 24,
            DebugMsg::Disconnect { .. } => 16,
            DebugMsg::Request { req, .. } => 24 + req.wire_bytes(),
            DebugMsg::Reply { reply, .. } => 24 + reply.wire_bytes(),
            DebugMsg::HaltBroadcast { .. } | DebugMsg::ResumeBroadcast { .. } => 20,
            DebugMsg::Event { event, .. } => 24 + event.wire_bytes(),
        }
    }
}

/// Asynchronous agent → debugger notifications.
#[derive(Debug, Clone)]
pub enum AgentEvent {
    /// A planted breakpoint fired; the node (and, via broadcast, the
    /// cohort) has been halted.
    BreakpointHit {
        /// Node where it fired.
        node: NodeId,
        /// Process that hit it.
        pid: u64,
        /// Agent breakpoint slot.
        bp: u16,
        /// Procedure id.
        proc_id: u16,
        /// Program counter.
        pc: u32,
        /// Node real time of the hit.
        at: SimTime,
    },
    /// A process failed (execution error); the agent halts processes just
    /// as for a breakpoint (§5.2).
    ProcessFaulted {
        /// Node.
        node: NodeId,
        /// Process.
        pid: u64,
        /// Failure description.
        message: String,
        /// Node real time.
        at: SimTime,
    },
}

impl AgentEvent {
    fn wire_bytes(&self) -> usize {
        match self {
            AgentEvent::BreakpointHit { .. } => 32,
            AgentEvent::ProcessFaulted { message, .. } => 28 + message.len(),
        }
    }
}

/// A single logical request to an agent.
#[derive(Debug, Clone)]
pub enum AgentRequest {
    /// Liveness check.
    Ping,
    /// Plant a trap at an object-code address (§5.5).
    SetBreakpoint {
        /// Procedure index.
        proc_id: u16,
        /// Program counter.
        pc: u32,
    },
    /// Remove a planted trap, restoring the original instruction.
    ClearBreakpoint {
        /// Agent breakpoint slot.
        bp: u16,
    },
    /// Enumerate planted breakpoints.
    ListBreakpoints,
    /// Halt every halt-able process on the node (and broadcast to the
    /// cohort, as when a breakpoint fires).
    HaltAll,
    /// Resume the node (and broadcast); each agent folds its halt
    /// duration into its logical-clock delta.
    ResumeAll,
    /// Enumerate processes (§5.4 hooks keep the agent's registry).
    ListProcesses,
    /// One process's supervisor state.
    ProcessState {
        /// Target process.
        pid: u64,
    },
    /// The process's call stack in machine terms.
    ReadStack {
        /// Target process.
        pid: u64,
    },
    /// Low-level memory access: read a local variable slot.
    ReadVar {
        /// Target process.
        pid: u64,
        /// Frame index (0 = oldest).
        frame: u32,
        /// Local slot.
        slot: u16,
    },
    /// Low-level memory access: write a local variable slot.
    WriteVar {
        /// Target process.
        pid: u64,
        /// Frame index.
        frame: u32,
        /// Local slot.
        slot: u16,
        /// New value (marshalled).
        value: WireValue,
    },
    /// Read a node-global (`own`) variable.
    ReadGlobal {
        /// Global slot.
        slot: u16,
    },
    /// Write a node-global variable.
    WriteGlobal {
        /// Global slot.
        slot: u16,
        /// New value.
        value: WireValue,
    },
    /// Render a variable using the program's print operations (§3): for
    /// user record types with a `print_<type>` procedure the agent invokes
    /// it in the user program with output redirected to the debugger.
    PrintVar {
        /// Target process.
        pid: u64,
        /// Frame index.
        frame: u32,
        /// Local slot.
        slot: u16,
    },
    /// Invoke a procedure in the user program and return its results and
    /// redirected output (§3).
    Invoke {
        /// Procedure name.
        proc: String,
        /// Arguments.
        args: Vec<WireValue>,
    },
    /// Step a process over the breakpoint it is stopped at (§5.5: restore
    /// the instruction, execute one instruction in trace mode while other
    /// processes are halted, re-plant the trap).
    StepOver {
        /// The trapped process.
        pid: u64,
    },
    /// Release a process stopped at a trap or trace-stop.
    ContinueProcess {
        /// The stopped process.
        pid: u64,
    },
    /// §5.4 state transfer: make a waiting process runnable.
    ForceRunnable {
        /// Target process.
        pid: u64,
    },
    /// Halt a single process.
    HaltProcess {
        /// Target process.
        pid: u64,
    },
    /// Resume a single halted process.
    ResumeProcess {
        /// Target process.
        pid: u64,
    },
    /// The in-progress RPC the process is blocked in, from the client
    /// table and information block (§4.3).
    RpcStatus {
        /// Target process.
        pid: u64,
    },
    /// The ten-slot cyclic buffer of recent client-side call outcomes.
    RecentCalls,
    /// Recent server-side outcomes.
    RecentServed,
    /// Which process is serving `call_id` (server table; cross-node
    /// backtraces walk this).
    ServingProcess {
        /// The call.
        call_id: u64,
    },
    /// What this node knows about `call_id` as a server (maybe-failure
    /// diagnosis, §4.1).
    ServerKnowledge {
        /// The call.
        call_id: u64,
    },
    /// Which local process has `call_id` outstanding as a client (upward
    /// cross-node backtraces).
    ClientProcess {
        /// The call.
        call_id: u64,
    },
    /// Console output lines starting at an offset.
    ReadConsole {
        /// First line index wanted.
        from: u32,
    },
}

impl AgentRequest {
    fn wire_bytes(&self) -> usize {
        match self {
            AgentRequest::WriteVar { value, .. } | AgentRequest::WriteGlobal { value, .. } => {
                16 + value.wire_bytes()
            }
            AgentRequest::Invoke { proc, args } => {
                8 + proc.len() + args.iter().map(WireValue::wire_bytes).sum::<usize>()
            }
            _ => 16,
        }
    }
}

/// A process's supervisor state, in wire form.
#[derive(Debug, Clone, PartialEq)]
pub enum StateView {
    /// Eligible to run.
    Runnable,
    /// Sleeping; remaining milliseconds.
    Sleeping {
        /// Time left.
        remaining_ms: i64,
    },
    /// Waiting on a semaphore.
    SemWait {
        /// Semaphore handle.
        sem: u32,
        /// Remaining timeout ms (`None` = forever).
        remaining_ms: Option<i64>,
    },
    /// Waiting for a monitor lock.
    MutexWait {
        /// Lock handle.
        mutex: u32,
    },
    /// Blocked in an RPC.
    RpcWait,
    /// Stopped at a breakpoint.
    Trapped {
        /// Breakpoint slot.
        bp: u16,
    },
    /// Stopped after a trace-mode step.
    TraceStopped,
    /// Dead with a failure.
    Faulted {
        /// Description.
        message: String,
    },
    /// Ran to completion.
    Exited,
}

/// One process as reported by the agent.
#[derive(Debug, Clone)]
pub struct ProcView {
    /// Process id.
    pub pid: u64,
    /// Name.
    pub name: String,
    /// State.
    pub state: StateView,
    /// Halted by the debugger?
    pub halted: bool,
    /// Exempt from halting?
    pub no_halt: bool,
    /// Priority.
    pub priority: u8,
    /// Stack depth (VM processes).
    pub frames: u32,
    /// Current code position (proc id, pc).
    pub addr: Option<(u16, u32)>,
}

/// RPC information attached to a stack frame (from the information block
/// in its known position, §4.3 / Figure 1).
#[derive(Debug, Clone)]
pub struct RpcFrameView {
    /// Call identifier.
    pub call_id: u64,
    /// Remote procedure name.
    pub remote_proc: String,
    /// Protocol name ("exactly-once" / "maybe").
    pub protocol: String,
    /// Protocol state rendered as text.
    pub state: String,
    /// Retransmissions so far.
    pub retries: u32,
    /// The other node: callee for a client stub, caller for a server root.
    pub peer: Option<NodeId>,
}

/// One stack frame in machine terms; the debugger proper maps it to source.
#[derive(Debug, Clone)]
pub struct FrameSummary {
    /// Frame index, 0 = oldest.
    pub index: u32,
    /// Procedure index in the node's program.
    pub proc_id: u16,
    /// Program counter.
    pub pc: u32,
    /// Has the frame's entry sequence completed (§5.5)?
    pub well_formed: bool,
    /// Frame role: "normal", "rpc-stub", "server-root", "agent-invoke".
    pub kind: String,
    /// RPC information block contents, when present.
    pub rpc: Option<RpcFrameView>,
}

/// What a server node knows about a call id, in wire form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnowledgeView {
    /// Call packet never arrived.
    NeverSeen,
    /// Currently executing.
    Executing,
    /// Executed and replied (success flag).
    Replied(bool),
}

/// The in-progress call of a client process.
#[derive(Debug, Clone)]
pub struct RpcCallView {
    /// Call identifier.
    pub call_id: u64,
    /// Remote procedure.
    pub proc: String,
    /// Protocol name.
    pub protocol: String,
    /// Protocol state as text.
    pub state: String,
    /// Retransmissions.
    pub retries: u32,
    /// Destination node.
    pub dst: NodeId,
}

/// Reply to an [`AgentRequest`].
#[derive(Debug, Clone)]
pub enum AgentReply {
    /// Success with nothing to report.
    Ok,
    /// The request failed.
    Error(String),
    /// Breakpoint planted.
    BreakpointSet {
        /// Agent slot for later clearing.
        bp: u16,
    },
    /// Planted breakpoints: `(slot, proc_id, pc)`.
    Breakpoints(Vec<(u16, u16, u32)>),
    /// Process list.
    Processes(Vec<ProcView>),
    /// Single process.
    Process(ProcView),
    /// Stack frames, oldest first.
    Stack(Vec<FrameSummary>),
    /// A marshalled value.
    Value(WireValue),
    /// Rendered text from a print operation.
    Printed(String),
    /// Results of an agent-initiated invocation (§3).
    Invoked {
        /// The procedure's return values.
        results: Vec<WireValue>,
        /// Redirected `print` output.
        output: String,
    },
    /// In-progress RPC of a process (None when it is not in a call).
    Rpc(Option<RpcCallView>),
    /// Cyclic-buffer contents: `(call_id, succeeded)`, oldest first.
    Recent(Vec<(u64, bool)>),
    /// The serving process for a call id, if any.
    Serving(Option<u64>),
    /// Server-side knowledge about a call.
    Knowledge(KnowledgeView),
    /// Console lines.
    Console(Vec<String>),
    /// Number of processes halted.
    Halted(usize),
    /// The node resumed; how long it had been halted (which the agent has
    /// just folded into the node's logical-clock delta, §5.2).
    Resumed {
        /// Halt duration in microseconds.
        halted_for_us: u64,
    },
    /// The client process holding a call open (reverse client-table
    /// lookup, for upward cross-node backtraces).
    ClientOf(Option<u64>),
}

impl AgentReply {
    fn wire_bytes(&self) -> usize {
        match self {
            AgentReply::Processes(ps) => 8 + ps.len() * 32,
            AgentReply::Stack(fs) => 8 + fs.len() * 24,
            AgentReply::Value(v) => 8 + v.wire_bytes(),
            AgentReply::Printed(s) => 8 + s.len(),
            AgentReply::Invoked { results, output } => {
                8 + output.len() + results.iter().map(WireValue::wire_bytes).sum::<usize>()
            }
            AgentReply::Console(ls) => 8 + ls.iter().map(|l| l.len() + 2).sum::<usize>(),
            AgentReply::Recent(r) => 8 + r.len() * 9,
            AgentReply::Error(e) => 8 + e.len(),
            _ => 16,
        }
    }
}

/// The result the debugger-side support procedure `convert_debuggee_time`
/// returns (§6.1); bundled with how much halt time was subtracted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvertedTime {
    /// The equivalent client logical time.
    pub logical: SimTime,
    /// Total halt time subtracted.
    pub subtracted: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_reflect_payload() {
        let small = DebugMsg::Request {
            session: SessionId(1),
            seq: 1,
            req: AgentRequest::Ping,
        };
        let big = DebugMsg::Request {
            session: SessionId(1),
            seq: 2,
            req: AgentRequest::Invoke {
                proc: "print_point".into(),
                args: vec![WireValue::Str("a long string value here".into())],
            },
        };
        assert!(big.wire_bytes() > small.wire_bytes());
        let halt = DebugMsg::HaltBroadcast {
            session: SessionId(1),
            origin: NodeId(0),
        };
        assert!(
            halt.wire_bytes() <= 32,
            "halt messages fit in a small basic block"
        );
    }

    #[test]
    fn session_display() {
        assert_eq!(SessionId(77).to_string(), "session#77");
    }
}
