//! The debugger proper: the debugger-side half of Pilgrim.
//!
//! Per §3, "all activities involving the user interface, type-checking,
//! and access to the source-to-object mapping information produced by the
//! compiler and linker are performed in the debugger proper". This module
//! keeps the debugger's connection state, the source-to-object tables for
//! every node, the breakpoint registry, the asynchronous event queue, and
//! the breakpoint log driving `convert_debuggee_time` (§6.1). The
//! request/response pumping lives in [`crate::world::World`], which plays
//! the role of the user at the terminal.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

use pilgrim_cclu::{CodeAddr, Program, Signature, Type, Value};
use pilgrim_ring::NodeId;
use pilgrim_rpc::{HandlerCtx, NativeHandler};
use pilgrim_sim::{SimTime, TraceCategory, Tracer};

use crate::proto::{AgentEvent, AgentReply, DebugMsg, SessionId};
use crate::timebase::BreakpointLog;

/// A breakpoint as the debugger tracks it.
#[derive(Debug, Clone)]
pub struct BreakpointInfo {
    /// Which node it is planted on.
    pub node: NodeId,
    /// The agent's slot on that node.
    pub bp: u16,
    /// Object-code address.
    pub addr: CodeAddr,
    /// Source line, when set by line.
    pub line: Option<u32>,
}

/// An asynchronous debugger-visible event.
#[derive(Debug, Clone)]
pub enum DebugEvent {
    /// A breakpoint fired; the cohort is halting.
    BreakpointHit {
        /// Node where it fired.
        node: NodeId,
        /// Process that hit it.
        pid: u64,
        /// Agent breakpoint slot.
        bp: u16,
        /// Source line (mapped by the debugger proper).
        line: Option<u32>,
        /// Procedure name.
        proc: String,
        /// Node real time of the hit.
        at: SimTime,
    },
    /// A process faulted; the cohort is halting.
    ProcessFaulted {
        /// Node.
        node: NodeId,
        /// Process.
        pid: u64,
        /// Failure description.
        message: String,
        /// Node real time.
        at: SimTime,
    },
}

/// Debugger-side connection and bookkeeping state.
pub struct Debugger {
    station: NodeId,
    session: Option<SessionId>,
    next_session: u64,
    cohort: Vec<NodeId>,
    next_seq: u64,
    replies: HashMap<u64, AgentReply>,
    connect_acks: HashSet<NodeId>,
    connect_refusals: HashSet<NodeId>,
    events: VecDeque<DebugEvent>,
    programs: HashMap<NodeId, Arc<Program>>,
    breakpoints: Vec<BreakpointInfo>,
    log: Rc<RefCell<BreakpointLog>>,
    tracer: Tracer,
}

impl std::fmt::Debug for Debugger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Debugger")
            .field("station", &self.station)
            .field("session", &self.session)
            .field("cohort", &self.cohort)
            .finish()
    }
}

impl Debugger {
    /// Creates a debugger homed at network station `station`.
    pub fn new(station: NodeId, tracer: Tracer) -> Debugger {
        Debugger {
            station,
            session: None,
            next_session: 0,
            cohort: Vec::new(),
            next_seq: 1,
            replies: HashMap::new(),
            connect_acks: HashSet::new(),
            connect_refusals: HashSet::new(),
            events: VecDeque::new(),
            programs: HashMap::new(),
            breakpoints: Vec::new(),
            log: Rc::new(RefCell::new(BreakpointLog::new())),
            tracer,
        }
    }

    /// The debugger's network address.
    pub fn station(&self) -> NodeId {
        self.station
    }

    /// The active session, if connected.
    pub fn session(&self) -> Option<SessionId> {
        self.session
    }

    /// Nodes under control of this debugger.
    pub fn cohort(&self) -> &[NodeId] {
        &self.cohort
    }

    /// Gives the debugger proper its copy of a node's source-to-object
    /// mapping information (§3).
    pub fn load_program(&mut self, node: NodeId, program: Arc<Program>) {
        self.programs.insert(node, program);
    }

    /// The program of `node`, if loaded.
    pub fn program(&self, node: NodeId) -> Option<&Program> {
        self.programs.get(&node).map(|p| &**p)
    }

    /// The shared breakpoint log (also read by the
    /// `convert_debuggee_time` handler).
    pub fn log(&self) -> Rc<RefCell<BreakpointLog>> {
        self.log.clone()
    }

    /// Builds the `convert_debuggee_time` RPC handler (§6.1), to be
    /// registered on the debugger's own node.
    pub fn convert_time_handler(&self) -> Box<dyn NativeHandler> {
        Box::new(ConvertTimeHandler {
            log: self.log.clone(),
        })
    }

    /// Generates the next session identifier — "a unique but guessable
    /// number" (§3): a plain counter offset, deliberately predictable.
    pub fn fresh_session(&mut self) -> SessionId {
        self.next_session += 1;
        SessionId(1_000 + self.next_session)
    }

    /// Marks a connection attempt under way.
    pub fn begin_connect(&mut self, session: SessionId, cohort: Vec<NodeId>) {
        self.session = Some(session);
        self.cohort = cohort;
        self.connect_acks.clear();
        self.connect_refusals.clear();
        self.breakpoints.clear();
    }

    /// Nodes that have acknowledged the connect so far.
    pub fn connect_acks(&self) -> usize {
        self.connect_acks.len()
    }

    /// Nodes that refused the connect.
    pub fn connect_refusals(&self) -> usize {
        self.connect_refusals.len()
    }

    /// Abandons the session client-side without telling the agents —
    /// simulates a crashed debugger, after which only a forcible
    /// connection can reclaim the agents (§3).
    pub fn abandon(&mut self) {
        self.session = None;
        self.cohort.clear();
        self.breakpoints.clear();
    }

    /// Allocates a request sequence number.
    pub fn next_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Takes the reply for `seq` if it has arrived.
    pub fn take_reply(&mut self, seq: u64) -> Option<AgentReply> {
        self.replies.remove(&seq)
    }

    /// Drains pending events.
    pub fn take_events(&mut self) -> Vec<DebugEvent> {
        self.events.drain(..).collect()
    }

    /// Records a planted breakpoint.
    pub fn record_breakpoint(&mut self, info: BreakpointInfo) {
        self.breakpoints.push(info);
    }

    /// Forgets a cleared breakpoint.
    pub fn forget_breakpoint(&mut self, node: NodeId, bp: u16) {
        self.breakpoints.retain(|b| !(b.node == node && b.bp == bp));
    }

    /// Breakpoints currently planted.
    pub fn breakpoints(&self) -> &[BreakpointInfo] {
        &self.breakpoints
    }

    /// Looks up a planted breakpoint by node and slot.
    pub fn breakpoint(&self, node: NodeId, bp: u16) -> Option<&BreakpointInfo> {
        self.breakpoints
            .iter()
            .find(|b| b.node == node && b.bp == bp)
    }

    /// Maps a `(proc_id, pc)` on `node` to `(procedure name, line)` using
    /// the debugger's source-to-object tables.
    pub fn source_position(&self, node: NodeId, proc_id: u16, pc: u32) -> (String, Option<u32>) {
        let Some(program) = self.programs.get(&node) else {
            return (format!("proc#{proc_id}"), None);
        };
        let Some(code) = program.procs.get(proc_id as usize) else {
            return (format!("proc#{proc_id}"), None);
        };
        (code.debug.name.to_string(), code.debug.line_for_pc(pc))
    }

    /// Finds a variable visible at `(proc_id, pc)` on `node`: returns
    /// `(slot, type)`. This is debugger-proper work — the agent only ever
    /// sees slots.
    pub fn resolve_variable(
        &self,
        node: NodeId,
        proc_id: u16,
        pc: u32,
        name: &str,
    ) -> Option<(u16, Type)> {
        let program = self.programs.get(&node)?;
        let code = program.procs.get(proc_id as usize)?;
        let var = code.debug.var_at(name, pc)?;
        Some((var.slot, var.ty.clone()))
    }

    /// Finds a node-global (`own`) variable: `(slot, type)`.
    pub fn resolve_global(&self, node: NodeId, name: &str) -> Option<(u16, Type)> {
        let program = self.programs.get(&node)?;
        program
            .globals
            .iter()
            .position(|g| &*g.name == name)
            .map(|i| (i as u16, program.globals[i].ty.clone()))
    }

    /// Processes a message delivered to the debugger's station.
    pub fn on_msg(&mut self, now: SimTime, _src: NodeId, msg: DebugMsg) {
        match msg {
            DebugMsg::ConnectReply {
                session,
                accepted,
                node,
            } if self.session == Some(session) => {
                if accepted {
                    self.connect_acks.insert(node);
                } else {
                    self.connect_refusals.insert(node);
                }
            }
            DebugMsg::Reply {
                session,
                seq,
                reply,
            } if self.session == Some(session) => {
                self.replies.insert(seq, reply);
            }
            DebugMsg::Event { session, event } => {
                if self.session != Some(session) {
                    return;
                }
                match event {
                    AgentEvent::BreakpointHit {
                        node,
                        pid,
                        bp,
                        proc_id,
                        pc,
                        at,
                    } => {
                        // The interruption starts now for the breakpoint
                        // log (§6.1).
                        self.log.borrow_mut().begin_halt(at);
                        let (proc, line) = self.source_position(node, proc_id, pc);
                        self.tracer.record(
                            now,
                            TraceCategory::Debug,
                            Some(self.station.0),
                            format!("breakpoint #{bp} hit on {node} p{pid} at {proc}:{line:?}"),
                        );
                        self.events.push_back(DebugEvent::BreakpointHit {
                            node,
                            pid,
                            bp,
                            line,
                            proc,
                            at,
                        });
                    }
                    AgentEvent::ProcessFaulted {
                        node,
                        pid,
                        message,
                        at,
                    } => {
                        self.log.borrow_mut().begin_halt(at);
                        self.events.push_back(DebugEvent::ProcessFaulted {
                            node,
                            pid,
                            message,
                            at,
                        });
                    }
                }
            }
            // Agent-side messages are never addressed to the debugger.
            _ => {}
        }
    }

    /// Notes that the cohort resumed (driven by the world after the
    /// resume round-trip completes).
    pub fn note_resumed(&mut self, halt_start_plus: SimTime) {
        self.log.borrow_mut().end_halt(halt_start_plus);
    }

    /// Type-checks `value` against `expected`, debugger-proper side, so
    /// ill-typed modifications never reach the agent.
    pub fn check_assignment(
        expected: &Type,
        value: &pilgrim_rpc::WireValue,
        program: &Program,
    ) -> Result<(), String> {
        if pilgrim_rpc::wire_matches_type(value, expected, &program.records) {
            Ok(())
        } else {
            Err(format!("value does not have type {expected}"))
        }
    }

    /// Resolves a first executable address for `line` on `node`.
    pub fn addr_for_line(&self, node: NodeId, line: u32) -> Option<CodeAddr> {
        self.programs.get(&node)?.addr_for_line(line)
    }

    /// Resolves the entry address of procedure `name` on `node` (used for
    /// "break on procedure" — the first instruction after the entry
    /// sequence).
    pub fn addr_for_proc(&self, node: NodeId, name: &str) -> Option<CodeAddr> {
        let program = self.programs.get(&node)?;
        let id = program.proc_by_name(name)?;
        let entry_end = program.proc(id).debug.entry_end;
        Some(CodeAddr {
            proc: id,
            pc: entry_end,
        })
    }
}

/// The `convert_debuggee_time` RPC handler (§6.1), registered on the
/// debugger's node. Signature: `proc (date) returns (date)` with dates as
/// millisecond integers.
struct ConvertTimeHandler {
    log: Rc<RefCell<BreakpointLog>>,
}

impl NativeHandler for ConvertTimeHandler {
    fn signature(&self) -> Signature {
        Signature {
            params: vec![Type::Int],
            returns: vec![Type::Int],
        }
    }

    fn handle(
        &mut self,
        _ctx: &mut HandlerCtx<'_>,
        args: Vec<Value>,
    ) -> Result<Vec<Value>, String> {
        let real_ms = args[0].as_int().ok_or("date must be an int")?;
        let real = SimTime::from_millis(real_ms.max(0) as u64);
        let converted = self.log.borrow().convert_debuggee_time(real);
        Ok(vec![Value::Int(converted.logical.as_millis() as i64)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_ids_are_unique_but_guessable() {
        let mut d = Debugger::new(NodeId(9), Tracer::new());
        let a = d.fresh_session();
        let b = d.fresh_session();
        assert_ne!(a, b);
        assert_eq!(b.0, a.0 + 1, "guessable: a plain counter");
    }

    #[test]
    fn replies_keyed_by_seq_and_session() {
        let mut d = Debugger::new(NodeId(9), Tracer::new());
        let s = d.fresh_session();
        d.begin_connect(s, vec![NodeId(0)]);
        let seq = d.next_seq();
        // A reply for a stale session is discarded.
        d.on_msg(
            SimTime::ZERO,
            NodeId(0),
            DebugMsg::Reply {
                session: SessionId(999),
                seq,
                reply: AgentReply::Ok,
            },
        );
        assert!(d.take_reply(seq).is_none());
        d.on_msg(
            SimTime::ZERO,
            NodeId(0),
            DebugMsg::Reply {
                session: s,
                seq,
                reply: AgentReply::Ok,
            },
        );
        assert!(matches!(d.take_reply(seq), Some(AgentReply::Ok)));
        assert!(d.take_reply(seq).is_none(), "reply consumed");
    }

    #[test]
    fn source_mapping_uses_loaded_programs() {
        let mut d = Debugger::new(NodeId(9), Tracer::new());
        let program =
            pilgrim_cclu::compile("main = proc ()\n x: int := 1\n print(x)\nend").unwrap();
        d.load_program(NodeId(0), Arc::new(program));
        let (name, line) = d.source_position(NodeId(0), 0, 1);
        assert_eq!(name, "main");
        assert_eq!(line, Some(2));
        let (name, line) = d.source_position(NodeId(3), 0, 1);
        assert_eq!(name, "proc#0");
        assert_eq!(line, None);
        assert!(d.addr_for_line(NodeId(0), 3).is_some());
        assert!(d.addr_for_proc(NodeId(0), "main").is_some());
        let (slot, ty) = d.resolve_variable(NodeId(0), 0, 4, "x").unwrap();
        assert_eq!(slot, 0);
        assert_eq!(ty, Type::Int);
    }

    #[test]
    fn events_update_breakpoint_log() {
        let mut d = Debugger::new(NodeId(9), Tracer::new());
        let s = d.fresh_session();
        d.begin_connect(s, vec![NodeId(0)]);
        d.on_msg(
            SimTime::from_millis(10),
            NodeId(0),
            DebugMsg::Event {
                session: s,
                event: AgentEvent::BreakpointHit {
                    node: NodeId(0),
                    pid: 1,
                    bp: 0,
                    proc_id: 0,
                    pc: 0,
                    at: SimTime::from_millis(10),
                },
            },
        );
        assert!(d.log().borrow().is_halted());
        assert_eq!(d.take_events().len(), 1);
        d.note_resumed(SimTime::from_millis(60));
        assert!(!d.log().borrow().is_halted());
        assert_eq!(
            d.log().borrow().total_halted(SimTime::from_secs(1)),
            pilgrim_sim::SimDuration::from_millis(50)
        );
    }
}
