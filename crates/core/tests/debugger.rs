//! End-to-end tests of the Pilgrim debugger against simulated distributed
//! Concurrent CLU programs. Each test exercises a mechanism the paper
//! describes, cited by section.

use pilgrim::{
    AgentRequest, DebugError, DebugEvent, MaybeDiagnosis, SimDuration, StateView, Value, WireValue,
    World,
};

fn run_quiet(world: &mut World, secs: u64) {
    let t = world.now() + SimDuration::from_secs(secs);
    world.run_until_idle(t);
}

// ---------------------------------------------------------------------
// §3: sessions
// ---------------------------------------------------------------------

const LOOPER: &str = "\
main = proc ()
 i: int := 0
 while i < 1000000 do
  i := i + 1
  sleep(10)
 end
end";

#[test]
fn connect_and_disconnect() {
    let mut w = World::builder().nodes(2).program(LOOPER).build().unwrap();
    let s = w.debug_connect(&[0, 1], false).unwrap();
    assert!(w.agent(0).unwrap().connected());
    assert_eq!(w.agent(1).unwrap().session(), Some(s));
    w.debug_disconnect().unwrap();
    assert!(!w.agent(0).unwrap().connected());
    assert!(!w.agent(1).unwrap().connected());
}

#[test]
fn second_debugger_needs_forcible_connect() {
    let mut w = World::builder().nodes(1).program(LOOPER).build().unwrap();
    w.debug_connect(&[0], false).unwrap();
    // Simulate a crashed debugger: the agent still holds the old session.
    w.debug_abandon();
    match w.debug_connect(&[0], false) {
        Err(DebugError::Refused) => {}
        other => panic!("expected refusal, got {other:?}"),
    }
    // Forcible connection reclaims the agent (§3).
    let s2 = w.debug_connect(&[0], true).unwrap();
    assert_eq!(w.agent(0).unwrap().session(), Some(s2));
}

#[test]
fn forcible_connect_clears_breakpoints() {
    let src = "\
main = proc ()
 x: int := 1
 x := 2
 print(x)
end";
    let mut w = World::builder().nodes(1).program(src).build().unwrap();
    w.debug_connect(&[0], false).unwrap();
    w.break_at_line(0, 3).unwrap();
    w.debug_abandon();
    w.debug_connect(&[0], true).unwrap();
    // The old trap is gone: the program runs to completion unimpeded.
    w.spawn(0, "main", vec![]);
    run_quiet(&mut w, 2);
    assert_eq!(w.console(0), vec!["2"]);
    assert!(w.debug_events().is_empty(), "no stale trap fired");
}

#[test]
fn requests_with_stale_session_are_rejected() {
    let mut w = World::builder().nodes(1).program(LOOPER).build().unwrap();
    w.debug_connect(&[0], false).unwrap();
    w.debug_abandon();
    w.debug_connect(&[0], true).unwrap();
    // New session works.
    let reply = w.debug_request(0, AgentRequest::Ping).unwrap();
    assert!(matches!(reply, pilgrim::AgentReply::Ok));
}

// ---------------------------------------------------------------------
// §5.5: breakpoints, stepping, stack interpretation
// ---------------------------------------------------------------------

const COUNTER: &str = "\
bump = proc (a: int, b: int) returns (int)
 c: int := a + b
 return (c)
end
main = proc ()
 total: int := 0
 for i: int := 1 to 5 do
  total := bump(total, i)
 end
 print(total)
end";

#[test]
fn breakpoint_fires_and_reports_source_position() {
    let mut w = World::builder().nodes(1).program(COUNTER).build().unwrap();
    w.debug_connect(&[0], false).unwrap();
    w.break_at_line(0, 2).unwrap();
    let pid = w.spawn(0, "main", vec![]).0;
    let ev = w.wait_for_stop(SimDuration::from_secs(2)).unwrap();
    match ev {
        DebugEvent::BreakpointHit {
            node, line, proc, ..
        } => {
            assert_eq!(node.0, 0);
            assert_eq!(line, Some(2));
            assert_eq!(proc, "bump");
        }
        other => panic!("unexpected {other:?}"),
    }
    // The whole node halted (§5.2).
    let procs = w.debug_processes(0).unwrap();
    let main = procs.iter().find(|p| p.name == "main").unwrap();
    assert!(main.halted, "other processes are halted while stopped");
    let _ = pid;
}

#[test]
fn step_over_executes_one_instruction_and_retains_breakpoint() {
    let mut w = World::builder().nodes(1).program(COUNTER).build().unwrap();
    w.debug_connect(&[0], false).unwrap();
    w.break_at_line(0, 2).unwrap();
    w.spawn(0, "main", vec![]);
    // Hit 1: in the first call to bump.
    let DebugEvent::BreakpointHit { pid, .. } = w.wait_for_stop(SimDuration::from_secs(2)).unwrap()
    else {
        panic!("expected breakpoint")
    };
    // Inspect arguments at the stop.
    assert_eq!(w.inspect(0, pid, "a").unwrap(), "0");
    assert_eq!(w.inspect(0, pid, "b").unwrap(), "1");
    // Step over, continue, resume: the loop calls bump again and the
    // breakpoint must still be planted.
    w.continue_process(0, pid).unwrap();
    w.debug_resume_all().unwrap();
    let DebugEvent::BreakpointHit { pid: pid2, .. } =
        w.wait_for_stop(SimDuration::from_secs(2)).unwrap()
    else {
        panic!("expected second hit")
    };
    assert_eq!(w.inspect(0, pid2, "b").unwrap(), "2", "second iteration");
    // Clean up and let it finish.
    w.continue_process(0, pid2).unwrap();
    let bp = w.debugger().unwrap().breakpoints()[0].bp;
    w.clear_breakpoint(0, bp).unwrap();
    w.debug_resume_all().unwrap();
    run_quiet(&mut w, 5);
    assert_eq!(w.console(0), vec!["15"]);
}

#[test]
fn modifying_a_variable_changes_the_computation() {
    let mut w = World::builder().nodes(1).program(COUNTER).build().unwrap();
    w.debug_connect(&[0], false).unwrap();
    w.break_at_line(0, 3).unwrap(); // at `return (c)`
    w.spawn(0, "main", vec![]);
    let DebugEvent::BreakpointHit { pid, .. } = w.wait_for_stop(SimDuration::from_secs(2)).unwrap()
    else {
        panic!("expected breakpoint")
    };
    // c = 0 + 1 on the first iteration; overwrite it (§5.4: "their
    // variables ... modifiable").
    assert_eq!(w.inspect(0, pid, "c").unwrap(), "1");
    w.set_variable(0, pid, "c", WireValue::Int(100)).unwrap();
    let bp = w.debugger().unwrap().breakpoints()[0].bp;
    w.continue_process(0, pid).unwrap();
    w.clear_breakpoint(0, bp).unwrap();
    w.debug_resume_all().unwrap();
    run_quiet(&mut w, 5);
    // 100 + 2 + 3 + 4 + 5 = 114
    assert_eq!(w.console(0), vec!["114"]);
}

#[test]
fn set_variable_is_type_checked_in_the_debugger() {
    let mut w = World::builder().nodes(1).program(COUNTER).build().unwrap();
    w.debug_connect(&[0], false).unwrap();
    w.break_at_line(0, 2).unwrap();
    w.spawn(0, "main", vec![]);
    let DebugEvent::BreakpointHit { pid, .. } = w.wait_for_stop(SimDuration::from_secs(2)).unwrap()
    else {
        panic!("expected breakpoint")
    };
    match w.set_variable(0, pid, "a", WireValue::Str("nope".into())) {
        Err(DebugError::Source(msg)) => assert!(msg.contains("int"), "{msg}"),
        other => panic!("expected type error, got {other:?}"),
    }
}

#[test]
fn unknown_line_and_variable_errors() {
    let mut w = World::builder().nodes(1).program(COUNTER).build().unwrap();
    w.debug_connect(&[0], false).unwrap();
    assert!(matches!(
        w.break_at_line(0, 999),
        Err(DebugError::Source(_))
    ));
    w.break_at_line(0, 2).unwrap();
    w.spawn(0, "main", vec![]);
    let DebugEvent::BreakpointHit { pid, .. } = w.wait_for_stop(SimDuration::from_secs(2)).unwrap()
    else {
        panic!("expected breakpoint")
    };
    assert!(matches!(
        w.inspect(0, pid, "nonexistent"),
        Err(DebugError::Source(_))
    ));
}

// ---------------------------------------------------------------------
// §3: print operations and procedure invocation
// ---------------------------------------------------------------------

const PRINTER: &str = "\
point = record[x: int, y: int]
print_point = proc (p: point) returns (string)
 return (\"(\" || int$unparse(p.x) || \", \" || int$unparse(p.y) || \")\")
end
describe = proc (n: int) returns (string)
 print(\"describing\")
 return (\"value is \" || int$unparse(n))
end
main = proc ()
 p: point := point${x: 3, y: 4}
 q: int := 0
 while q < 1000000 do
  q := q + 1
  sleep(10)
 end
 print(p)
end";

#[test]
fn inspect_uses_user_print_operation() {
    let mut w = World::builder().nodes(1).program(PRINTER).build().unwrap();
    w.debug_connect(&[0], false).unwrap();
    let pid = w.spawn(0, "main", vec![]).0;
    w.run_for(SimDuration::from_millis(100));
    // The record is rendered by print_point, invoked *in the user program*
    // by the agent (§3).
    assert_eq!(w.inspect(0, pid, "p").unwrap(), "(3, 4)");
    // Plain ints render directly.
    let q = w.inspect(0, pid, "q").unwrap();
    let _: i64 = q.parse().expect("q renders as an integer");
}

#[test]
fn invoke_returns_results_and_redirected_output() {
    let mut w = World::builder().nodes(1).program(PRINTER).build().unwrap();
    w.debug_connect(&[0], false).unwrap();
    w.spawn(0, "main", vec![]);
    w.run_for(SimDuration::from_millis(50));
    let reply = w
        .debug_request(
            0,
            AgentRequest::Invoke {
                proc: "describe".into(),
                args: vec![WireValue::Int(9)],
            },
        )
        .unwrap();
    match reply {
        pilgrim::AgentReply::Invoked { results, output } => {
            assert_eq!(results, vec![WireValue::Str("value is 9".into())]);
            assert_eq!(
                output, "describing",
                "print output was redirected to the debugger"
            );
        }
        other => panic!("unexpected {other:?}"),
    }
    // The invocation must not leak into the program's console.
    assert!(!w.console(0).contains(&"describing".to_string()));
}

// ---------------------------------------------------------------------
// §4: RPC debugging and Figure 1 cross-node backtraces
// ---------------------------------------------------------------------

const THREE_TIER: &str = "\
storage = proc (k: int) returns (int)
 sleep(80)
 return (k * 10)
end
middle = proc (k: int) returns (int)
 v: int := call storage(k) at 2
 return (v + 1)
end
main = proc ()
 r: int := call middle(4) at 1
 print(r)
end";

#[test]
fn cross_node_backtrace_walks_the_call_chain() {
    let mut w = World::builder()
        .nodes(3)
        .program(THREE_TIER)
        .build()
        .unwrap();
    w.debug_connect(&[0, 1, 2], false).unwrap();
    let client = w.spawn(0, "main", vec![]).0;
    // Let the chain build: main -> middle(node1) -> storage(node2).
    w.run_for(SimDuration::from_millis(45));

    let bt = w.distributed_backtrace(0, client).unwrap();
    let rendered: Vec<String> = bt.iter().map(|f| f.to_string()).collect();
    // The chain spans three nodes, outermost first.
    let nodes: Vec<u32> = bt.iter().map(|f| f.node).collect();
    assert!(nodes.starts_with(&[0]), "{rendered:?}");
    assert!(nodes.contains(&1) && nodes.contains(&2), "{rendered:?}");
    // Client stub frames carry the information block (Figure 1).
    let stub = bt
        .iter()
        .find(|f| f.kind == "rpc-stub" && f.node == 0)
        .expect("stub frame");
    let rpc = stub.rpc.as_ref().unwrap();
    assert_eq!(rpc.remote_proc, "middle");
    assert_eq!(rpc.protocol, "exactly-once");
    // Server-root frames mark the remote ends.
    assert!(bt.iter().any(|f| f.kind == "server-root" && f.node == 1));
    assert!(bt.iter().any(|f| f.kind == "server-root" && f.node == 2));
    // The deepest frames are storage's, on node 2.
    assert_eq!(bt.last().unwrap().node, 2);
    assert_eq!(bt.last().unwrap().proc_name, "storage");

    run_quiet(&mut w, 3);
    assert_eq!(w.console(0), vec!["41"]);
}

#[test]
fn rpc_status_shows_in_progress_call_state() {
    let mut w = World::builder()
        .nodes(3)
        .program(THREE_TIER)
        .build()
        .unwrap();
    w.debug_connect(&[0, 1, 2], false).unwrap();
    let client = w.spawn(0, "main", vec![]).0;
    w.run_for(SimDuration::from_millis(45));
    let call = w.rpc_status(0, client).unwrap().expect("call in progress");
    assert_eq!(call.proc, "middle");
    assert_eq!(call.dst.0, 1);
    assert_eq!(call.retries, 0);
    run_quiet(&mut w, 3);
    let done = w.rpc_status(0, client).unwrap();
    assert!(done.is_none(), "table entry removed after completion");
}

#[test]
fn maybe_failure_diagnosis_through_the_debugger() {
    let src = "\
ping = proc (n: int) returns (int)
 return (n + 1)
end
main = proc ()
 ok: bool := true
 r: int := 0
 ok, r := maybecall ping(1) at 1
 if ok then
  print(\"ok\")
 else
  print(\"failed\")
 end
 sleep(600000)
end";
    // Case 1: lost call.
    let mut w = World::builder().nodes(2).program(src).build().unwrap();
    w.debug_connect(&[0, 1], false).unwrap();
    w.net_mut()
        .drop_next(pilgrim::NodeId(0), pilgrim::NodeId(1), 1);
    w.spawn(0, "main", vec![]);
    w.run_for(SimDuration::from_millis(200));
    assert_eq!(w.console(0), vec!["failed"]);
    let recent = w.recent_calls(0).unwrap();
    let (call_id, ok) = *recent.last().unwrap();
    assert!(!ok);
    assert_eq!(
        w.diagnose_maybe_failure(1, call_id).unwrap(),
        MaybeDiagnosis::LostCall
    );

    // Case 2: lost reply.
    let mut w = World::builder().nodes(2).program(src).build().unwrap();
    w.debug_connect(&[0, 1], false).unwrap();
    w.net_mut()
        .drop_next(pilgrim::NodeId(1), pilgrim::NodeId(0), 1);
    w.spawn(0, "main", vec![]);
    w.run_for(SimDuration::from_millis(200));
    assert_eq!(w.console(0), vec!["failed"]);
    let recent = w.recent_calls(0).unwrap();
    let (call_id, _) = *recent.last().unwrap();
    assert_eq!(
        w.diagnose_maybe_failure(1, call_id).unwrap(),
        MaybeDiagnosis::LostReply
    );
}

// ---------------------------------------------------------------------
// §5.1–5.2: distributed halting and time consistency (Figure 2)
// ---------------------------------------------------------------------

/// The Figure 2 scenario (§5.1): process Q on node B waits on a semaphore
/// with a long timeout; a signaller (standing in for P's remote call
/// arriving) signals it well before the deadline — unless a debugger halt
/// distorts time.
const FIGURE2B: &str = "\
own counter: int := 0
waiter = proc (s: sem, grace: int)
 ok: bool := sem$wait(s, grace)
 if ok then
  print(\"Q signalled\")
 else
  print(\"Q timed out\")
 end
end
setup = proc (grace: int) returns (bool)
 s: sem := sem$create(0)
 fork waiter(s, grace)
 fork signaller(s)
 return (true)
end
signaller = proc (s: sem)
 sleep(2000)
 sem$signal(s)
end
p_side = proc ()
 ok: bool := call setup(10000) at 1
 print(\"armed\")
end";

#[test]
fn halt_freezes_remote_timeouts_across_breakpoint() {
    // Node 0 = P's node (A), node 1 = Q's node (B). Q waits 10 s and will
    // be signalled after 2 s of program time. A breakpoint interrupts the
    // world for longer than the whole timeout; with Pilgrim's frozen
    // timeouts Q must still be signalled, not time out.
    let mut w = World::builder().nodes(2).program(FIGURE2B).build().unwrap();
    w.debug_connect(&[0, 1], false).unwrap();
    w.spawn(0, "p_side", vec![]);
    w.run_for(SimDuration::from_millis(300));
    assert_eq!(w.console(0), vec!["armed"]);

    // Halt everything for 15 simulated seconds (> the 10 s timeout).
    w.debug_halt_all(0).unwrap();
    w.run_for(SimDuration::from_secs(15));
    assert!(w.console(1).is_empty(), "nothing may happen while halted");
    w.debug_resume_all().unwrap();
    run_quiet(&mut w, 20);
    assert_eq!(
        w.console(1),
        vec!["Q signalled"],
        "typical computation preserved"
    );
}

#[test]
fn logical_clocks_agree_across_nodes_after_halt() {
    let mut w = World::builder().nodes(3).program(FIGURE2B).build().unwrap();
    w.debug_connect(&[0, 1, 2], false).unwrap();
    w.spawn(0, "p_side", vec![]);
    w.run_for(SimDuration::from_millis(300));
    w.debug_halt_all(0).unwrap();
    w.run_for(SimDuration::from_secs(5));
    w.debug_resume_all().unwrap();
    w.run_for(SimDuration::from_millis(100));
    // §6.1: "the logical times at each node of a program being debugged
    // should be almost the same" — within the halt-broadcast spread.
    let deltas: Vec<u64> = (0..3).map(|i| w.node(i).delta().as_micros()).collect();
    let spread = deltas.iter().max().unwrap() - deltas.iter().min().unwrap();
    assert!(deltas.iter().all(|d| *d > 4_000_000), "{deltas:?}");
    assert!(
        spread < 50_000,
        "deltas within 50 ms of each other: {deltas:?}"
    );
    // And the breakpoint log total matches the deltas (§6.1).
    let log_total = w
        .debugger()
        .unwrap()
        .log()
        .borrow()
        .total_halted(w.now())
        .as_micros();
    let max_delta = *deltas.iter().max().unwrap();
    assert!(
        log_total.abs_diff(max_delta) < 100_000,
        "log {log_total} vs delta {max_delta}"
    );
}

#[test]
fn faults_halt_the_cohort_like_breakpoints() {
    let src = "\
main = proc ()
 sleep(50)
 x: int := 1 / 0
end
bystander = proc ()
 i: int := 0
 while i < 1000000 do
  i := i + 1
  sleep(5)
 end
end";
    let mut w = World::builder().nodes(2).program(src).build().unwrap();
    w.debug_connect(&[0, 1], false).unwrap();
    w.spawn(0, "main", vec![]);
    w.spawn(1, "bystander", vec![]);
    let ev = w.wait_for_stop(SimDuration::from_secs(2)).unwrap();
    match ev {
        DebugEvent::ProcessFaulted { node, message, .. } => {
            assert_eq!(node.0, 0);
            assert!(message.contains("DivideByZero"), "{message}");
        }
        other => panic!("unexpected {other:?}"),
    }
    w.run_for(SimDuration::from_millis(50));
    // The bystander on the *other* node was halted too (§5.2).
    let procs = w.debug_processes(1).unwrap();
    let by = procs.iter().find(|p| p.name == "bystander").unwrap();
    assert!(by.halted);
    // Post-mortem examination of the faulted process (§5.4).
    let procs0 = w.debug_processes(0).unwrap();
    let dead = procs0.iter().find(|p| p.name == "main").unwrap();
    assert!(matches!(dead.state, StateView::Faulted { .. }));
}

// ---------------------------------------------------------------------
// §6.1: support procedures for shared servers
// ---------------------------------------------------------------------

#[test]
fn get_debuggee_status_reports_connection_and_logical_time() {
    let src = "\
extern get_debuggee_status = proc () returns (int, int)
probe = proc (target: int)
 dbg: int := 0
 t: int := 0
 dbg, t := call get_debuggee_status() at target
 print(\"dbg=\" || int$unparse(dbg))
 print(\"t=\" || int$unparse(t))
end";
    let mut w = World::builder().nodes(2).program(src).build().unwrap();
    // Before any debugger connects: the special "not debugged" value.
    w.spawn(1, "probe", vec![Value::Int(0)]);
    run_quiet(&mut w, 2);
    assert_eq!(w.console(1)[0], "dbg=-1");

    // Connect the debugger to node 0 only; probe again from node 1.
    w.debug_connect(&[0], false).unwrap();
    let station = w.debugger_station().unwrap().0;
    w.spawn(1, "probe", vec![Value::Int(0)]);
    run_quiet(&mut w, 2);
    assert_eq!(w.console(1)[2], format!("dbg={station}"));
    // Logical time is real time while nothing has been halted.
    let t: i64 = w.console(1)[3].trim_start_matches("t=").parse().unwrap();
    assert!(t > 0);
}

#[test]
fn convert_debuggee_time_subtracts_halts() {
    let src = "\
extern convert_debuggee_time = proc (d: int) returns (int)
probe = proc (dbg_node: int, instant: int)
 conv: int := call convert_debuggee_time(instant) at dbg_node
 print(int$unparse(conv))
end
idle = proc ()
 i: int := 0
 while i < 1000000 do
  i := i + 1
  sleep(10)
 end
end";
    let mut w = World::builder().nodes(2).program(src).build().unwrap();
    w.debug_connect(&[0], false).unwrap();
    w.spawn(0, "idle", vec![]);
    w.run_for(SimDuration::from_millis(500));
    // Halt node 0 for ~2 s.
    w.debug_halt_all(0).unwrap();
    w.run_for(SimDuration::from_secs(2));
    w.debug_resume_all().unwrap();
    w.run_for(SimDuration::from_millis(100));
    // Node 1 (a "server") converts the current real time into the
    // client's logical time scale: about 2 s less.
    let now_ms = w.now().as_millis() as i64;
    let station = w.debugger_station().unwrap().0;
    w.spawn(
        1,
        "probe",
        vec![Value::Int(i64::from(station)), Value::Int(now_ms)],
    );
    run_quiet(&mut w, 2);
    let conv: i64 = w.console(1)[0].parse().unwrap();
    let subtracted = now_ms - conv;
    assert!(
        (1_900..2_300).contains(&subtracted),
        "converted time should lose ~2000 ms, lost {subtracted}"
    );
}

// ---------------------------------------------------------------------
// §1/§3: the dormant agent costs (almost) nothing
// ---------------------------------------------------------------------

#[test]
fn dormant_agent_does_not_perturb_execution() {
    let src = "\
main = proc ()
 t: int := 0
 for i: int := 1 to 200 do
  t := t + i * i
 end
 print(t)
 print(now())
end";
    let run = |agents: bool| {
        let mut w = World::builder()
            .nodes(1)
            .program(src)
            .agents(agents)
            .debugger(false)
            .build()
            .unwrap();
        w.spawn(0, "main", vec![]);
        run_quiet(&mut w, 5);
        w.console(0)
    };
    let with_agent = run(true);
    let without_agent = run(false);
    // Identical output *and* identical timing: the dormant agent imposes
    // no overhead on the program (§1, §3).
    assert_eq!(with_agent, without_agent);
}

#[test]
fn connected_but_idle_debugger_does_not_perturb_execution() {
    // (No `now()` here: connecting the debugger takes a few simulated
    // milliseconds before the program starts, which shifts absolute times
    // without perturbing the computation.)
    let src = "\
main = proc ()
 t: int := 0
 for i: int := 1 to 200 do
  t := t + i * i
 end
 print(t)
end";
    let mut w1 = World::builder().nodes(1).program(src).build().unwrap();
    w1.debug_connect(&[0], false).unwrap();
    w1.spawn(0, "main", vec![]);
    let t1 = w1.now() + SimDuration::from_secs(5);
    w1.run_until_idle(t1);

    let mut w2 = World::builder()
        .nodes(1)
        .program(src)
        .debugger(false)
        .build()
        .unwrap();
    w2.spawn(0, "main", vec![]);
    let t2 = w2.now() + SimDuration::from_secs(5);
    w2.run_until_idle(t2);

    assert_eq!(w1.console(0), w2.console(0));
}
