//! Coverage of the agent's low-level request surface — the §3 primitives
//! the higher-level debugger operations are built from.

use pilgrim::{
    AgentReply, AgentRequest, DebugEvent, SimDuration, SimTime, StateView, WireValue, World,
};

const PROGRAM: &str = "\
own tally: int := 7
own label: string := \"boot\"

spin = proc (rounds: int)
 acc: int := 0
 for i: int := 1 to rounds do
  acc := acc + i
  sleep(10)
 end
 print(\"acc \" || int$unparse(acc))
end

blocker = proc ()
 s: sem := sem$create(0)
 ok: bool := sem$wait(s, 0 - 1)
 if ok then
  print(\"woken\")
 else
  print(\"released\")
 end
end";

fn world() -> World {
    let mut w = World::builder().nodes(1).program(PROGRAM).build().unwrap();
    w.debug_connect(&[0], false).unwrap();
    w
}

#[test]
fn raw_variable_and_global_access() {
    let mut w = world();
    let pid = w.spawn(0, "spin", vec![pilgrim::Value::Int(1000)]).0;
    w.run_for(SimDuration::from_millis(100));

    // Raw slot-level reads, as the agent's memory-access primitive works.
    // Slot 1 is `acc` (slot 0 = the parameter).
    let reply = w
        .debug_request(
            0,
            AgentRequest::ReadVar {
                pid,
                frame: 0,
                slot: 1,
            },
        )
        .unwrap();
    let AgentReply::Value(WireValue::Int(acc)) = reply else {
        panic!("unexpected {reply:?}")
    };
    assert!(acc > 0);

    // Globals by slot.
    let reply = w
        .debug_request(0, AgentRequest::ReadGlobal { slot: 0 })
        .unwrap();
    assert!(matches!(reply, AgentReply::Value(WireValue::Int(7))));
    let reply = w
        .debug_request(0, AgentRequest::ReadGlobal { slot: 1 })
        .unwrap();
    let AgentReply::Value(WireValue::Str(s)) = reply else {
        panic!()
    };
    assert_eq!(&*s, "boot");

    // Write a global and read it back through the source-level path.
    w.debug_request(
        0,
        AgentRequest::WriteGlobal {
            slot: 1,
            value: WireValue::Str("patched".into()),
        },
    )
    .unwrap();
    assert_eq!(w.inspect(0, pid, "label").unwrap(), "patched");

    // Out-of-range accesses error rather than panic.
    assert!(w
        .debug_request(0, AgentRequest::ReadGlobal { slot: 99 })
        .is_err());
    assert!(w
        .debug_request(
            0,
            AgentRequest::ReadVar {
                pid,
                frame: 9,
                slot: 0
            }
        )
        .is_err());
    assert!(w
        .debug_request(
            0,
            AgentRequest::ReadVar {
                pid: 999,
                frame: 0,
                slot: 0
            }
        )
        .is_err());
}

#[test]
fn halt_and_resume_a_single_process() {
    let mut w = world();
    let a = w.spawn(0, "spin", vec![pilgrim::Value::Int(20)]).0;
    let b = w.spawn(0, "spin", vec![pilgrim::Value::Int(20)]).0;
    w.run_for(SimDuration::from_millis(30));

    // Halt only process a (§5.4 state transfer).
    w.debug_request(0, AgentRequest::HaltProcess { pid: a })
        .unwrap();
    w.run_until_idle(w.now() + SimDuration::from_secs(5));
    // b finished; a is still frozen mid-loop.
    assert_eq!(w.console(0), vec!["acc 210"]);
    let procs = w.debug_processes(0).unwrap();
    assert!(procs.iter().find(|p| p.pid == a).unwrap().halted);

    w.debug_request(0, AgentRequest::ResumeProcess { pid: a })
        .unwrap();
    w.run_until_idle(w.now() + SimDuration::from_secs(5));
    assert_eq!(w.console(0), vec!["acc 210", "acc 210"]);
    // Resuming a process that is not halted reports an error.
    assert!(w
        .debug_request(0, AgentRequest::ResumeProcess { pid: b })
        .is_err());
}

#[test]
fn force_runnable_releases_a_forever_wait() {
    let mut w = world();
    let pid = w.spawn(0, "blocker", vec![]).0;
    w.run_for(SimDuration::from_millis(50));
    let procs = w.debug_processes(0).unwrap();
    assert!(matches!(
        procs.iter().find(|p| p.pid == pid).unwrap().state,
        StateView::SemWait {
            remaining_ms: None,
            ..
        }
    ));
    w.debug_request(0, AgentRequest::ForceRunnable { pid })
        .unwrap();
    w.run_until_idle(w.now() + SimDuration::from_secs(5));
    assert_eq!(
        w.console(0),
        vec!["released"],
        "forced wake reads as timeout"
    );
}

#[test]
fn console_reads_with_offsets() {
    let mut w = world();
    w.spawn(0, "spin", vec![pilgrim::Value::Int(3)]);
    w.run_until_idle(SimTime::from_secs(5));
    let AgentReply::Console(all) = w
        .debug_request(0, AgentRequest::ReadConsole { from: 0 })
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(all, vec!["acc 6"]);
    let AgentReply::Console(rest) = w
        .debug_request(0, AgentRequest::ReadConsole { from: 1 })
        .unwrap()
    else {
        panic!()
    };
    assert!(rest.is_empty());
}

#[test]
fn breakpoint_listing_tracks_set_and_clear() {
    let mut w = world();
    let b1 = w.break_at_proc(0, "spin").unwrap();
    let b2 = w.break_at_proc(0, "blocker").unwrap();
    let AgentReply::Breakpoints(bps) = w.debug_request(0, AgentRequest::ListBreakpoints).unwrap()
    else {
        panic!()
    };
    assert_eq!(bps.len(), 2);
    w.clear_breakpoint(0, b1).unwrap();
    let AgentReply::Breakpoints(bps) = w.debug_request(0, AgentRequest::ListBreakpoints).unwrap()
    else {
        panic!()
    };
    assert_eq!(bps.len(), 1);
    assert_eq!(bps[0].0, b2);
    // Clearing twice errors; setting on an already-trapped address errors.
    assert!(w
        .debug_request(0, AgentRequest::ClearBreakpoint { bp: b1 })
        .is_err());
    let addr = w.debugger().unwrap().breakpoints()[0].addr;
    assert!(w
        .debug_request(
            0,
            AgentRequest::SetBreakpoint {
                proc_id: addr.proc.0,
                pc: addr.pc
            }
        )
        .is_err());
}

#[test]
fn stacks_are_examinable_while_running() {
    // §5.5: "Pilgrim allows procedure call stacks to be examined at any
    // time, not just when the process that owns the stack has hit a
    // breakpoint."
    let mut w = world();
    let pid = w.spawn(0, "spin", vec![pilgrim::Value::Int(500)]).0;
    for _ in 0..10 {
        w.run_for(SimDuration::from_millis(37));
        let bt = w.backtrace(0, pid).unwrap();
        assert!(!bt.is_empty());
        assert_eq!(bt[0].proc_name, "spin");
        // Every reported frame is flagged for §5.5 interpretation.
        for f in &bt {
            assert!(f.well_formed || f.index + 1 == bt.len() as u32);
        }
    }
}

#[test]
fn step_over_advances_exactly_one_line_at_a_time() {
    let src = "\
main = proc ()
 a: int := 1
 b: int := 2
 c: int := a + b
 print(c)
end";
    let mut w = World::builder().nodes(1).program(src).build().unwrap();
    w.debug_connect(&[0], false).unwrap();
    w.break_at_line(0, 3).unwrap();
    let pid = w.spawn(0, "main", vec![]).0;
    let DebugEvent::BreakpointHit { .. } = w.wait_for_stop(SimDuration::from_secs(2)).unwrap()
    else {
        panic!()
    };
    // `b` not yet assigned at the stop (trap is before the store)...
    // step over the trapped instruction a few times and watch the pc move.
    let before = w.backtrace(0, pid).unwrap()[0].line;
    w.step_over(0, pid).unwrap();
    let after = w.backtrace(0, pid).unwrap()[0].line;
    assert!(after >= before, "pc moves forward: {before:?} -> {after:?}");
    // The process is stopped after the trace step (§5.5 trace mode).
    let procs = w.debug_processes(0).unwrap();
    assert!(matches!(
        procs.iter().find(|p| p.pid == pid).unwrap().state,
        StateView::TraceStopped | StateView::Trapped { .. }
    ));
    w.continue_process(0, pid).unwrap();
    w.debug_resume_all().unwrap();
    w.run_until_idle(w.now() + SimDuration::from_secs(5));
    assert_eq!(w.console(0), vec!["3"]);
}

#[test]
fn recent_served_calls_visible_on_the_server() {
    let src = "\
ping = proc (n: int) returns (int)
 return (n)
end
main = proc ()
 for i: int := 1 to 3 do
  r: int := call ping(i) at 1
 end
 print(\"done\")
end";
    let mut w = World::builder().nodes(2).program(src).build().unwrap();
    w.debug_connect(&[0, 1], false).unwrap();
    w.spawn(0, "main", vec![]);
    w.run_until_idle(SimTime::from_secs(5));
    let AgentReply::Recent(served) = w.debug_request(1, AgentRequest::RecentServed).unwrap() else {
        panic!()
    };
    assert_eq!(served.len(), 3);
    assert!(served.iter().all(|(_, ok)| *ok));
}
