//! E6 — server timeout-extension strategies (§6.1–6.2, Figures 3 and 4).
//!
//! A client refreshes an AOTMan TUID (2 s lifetime) every second; midway
//! the debugger halts the client for 5 s. The table compares the paper's
//! strategies on both axes the paper discusses:
//!
//! * correctness — does the breakpointed client keep its TUID?
//! * cost — Figure 3 "has the disadvantage that an invocation of
//!   get_debuggee_status on the client is required at the start of every
//!   timeout, even when that client is not being debugged"; Figure 4
//!   "avoids this work unless the timeout does expire" but then calls both
//!   support procedures.

use pilgrim::{SimDuration, Value, World};
use pilgrim_bench::{verdict, Table};
use pilgrim_services::{AotConfig, AotMan, StrategyStats, TimeoutStrategy};

const CLIENT: &str = "\
extern aot_issue = proc () returns (int, int)
extern aot_refresh = proc (t: int) returns (bool)
extern aot_check = proc (t: int) returns (bool)
main = proc (svc: int, count: int, interval: int)
 t: int := 0
 life: int := 0
 t, life := call aot_issue() at svc
 for i: int := 1 to count do
  sleep(interval)
  ok: bool := call aot_refresh(t) at svc
  if ~ok then
   print(\"revoked\")
   return
  end
 end
 valid: bool := call aot_check(t) at svc
 if valid then
  print(\"survived\")
 else
  print(\"lost\")
 end
end";

fn run(strategy: TimeoutStrategy, halt_ms: u64, debugged: bool) -> (String, StrategyStats) {
    let mut w = World::builder()
        .nodes(2)
        .program(CLIENT)
        .build()
        .expect("world");
    let aot = AotMan::install(
        &mut w,
        1,
        AotConfig {
            lifetime: SimDuration::from_secs(2),
            strategy,
            ..Default::default()
        },
    );
    if debugged {
        w.debug_connect(&[0], false).expect("connect");
    }
    w.spawn(
        0,
        "main",
        vec![Value::Int(1), Value::Int(8), Value::Int(1000)],
    );
    w.run_for(SimDuration::from_millis(2_500));
    if halt_ms > 0 {
        w.debug_halt_all(0).expect("halt");
        w.run_for(SimDuration::from_millis(halt_ms));
        w.debug_resume_all().expect("resume");
    }
    w.run_until_idle(w.now() + SimDuration::from_secs(40));
    let outcome = w
        .console(0)
        .first()
        .cloned()
        .unwrap_or_else(|| "hung".into());
    (outcome, aot.stats())
}

fn main() {
    let strategies = [
        TimeoutStrategy::Naive,
        TimeoutStrategy::IgnoreWhileDebugged,
        TimeoutStrategy::StatusOnly,
        TimeoutStrategy::StatusAndConvert,
    ];

    // Scenario A: client halted 5 s mid-session (the debugging case).
    let mut a = Table::new(
        "E6a: TUID fate when the client is halted 5s mid-session (Figs 3/4)",
        "naive revokes; every debug-aware strategy extends by the halted time",
    )
    .headers([
        "strategy",
        "outcome",
        "status calls",
        "convert calls",
        "extensions",
        "verdict",
    ]);
    for s in strategies {
        let (outcome, stats) = run(s, 5_000, true);
        let expect_survive = s != TimeoutStrategy::Naive;
        let ok = (outcome == "survived") == expect_survive;
        a.row([
            s.to_string(),
            outcome,
            stats.status_calls.to_string(),
            stats.convert_calls.to_string(),
            stats.extensions.to_string(),
            verdict(ok).to_string(),
        ]);
    }
    a.print();

    // Scenario B: nobody is debugging — the overhead comparison the paper
    // makes between Figures 3 and 4.
    let mut b = Table::new(
        "E6b: support-procedure cost when the client is NOT being debugged",
        "Fig 3 pays one status call per timeout episode even when idle; \
         Fig 4 pays only on expiry",
    )
    .headers([
        "strategy",
        "outcome",
        "status calls",
        "convert calls",
        "verdict",
    ]);
    let mut fig3_calls = 0;
    let mut fig4_calls = 0;
    for s in [
        TimeoutStrategy::StatusOnly,
        TimeoutStrategy::StatusAndConvert,
    ] {
        let (outcome, stats) = run(s, 0, false);
        if s == TimeoutStrategy::StatusOnly {
            fig3_calls = stats.status_calls;
        } else {
            fig4_calls = stats.status_calls;
        }
        let ok = match s {
            TimeoutStrategy::StatusOnly => stats.status_calls >= 8,
            _ => stats.status_calls <= 1,
        } && outcome == "survived";
        b.row([
            s.to_string(),
            outcome,
            stats.status_calls.to_string(),
            stats.convert_calls.to_string(),
            verdict(ok).to_string(),
        ]);
    }
    b.print();
    println!(
        "\nFig 3 made {fig3_calls} status calls for 8 refresh episodes; Fig 4 made \
         {fig4_calls} — the trade-off of §6.2, reproduced."
    );
    assert!(fig3_calls >= 8 && fig4_calls <= 1);
    println!("\nE6 complete.");
}
