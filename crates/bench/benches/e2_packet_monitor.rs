//! E2 — the rejected packet-monitor design (§4.2).
//!
//! Paper: "the work performed in the RPC debugging support would be of the
//! same order as that in the RPC implementation itself. Thus RPCs might
//! take twice as long when under control of the debugger. This was
//! unacceptable."
//!
//! The ablation switches on the device-driver hook that reconstructs RPC
//! state from observed packets; every packet observation costs state-machine
//! work comparable to endpoint processing. The final design (E1) is shown
//! alongside for the comparison the paper actually made.

use pilgrim::{RpcConfig, SimTime, Value, World};
use pilgrim_bench::{fmt_us, verdict, Table};

const PROGRAM: &str = "\
ping = proc ()
end
echo = proc (s: string) returns (string)
 return (s)
end
run_null = proc (n: int)
 for i: int := 1 to n do
  call ping() at 1
 end
end
run_echo = proc (n: int, payload: string)
 for i: int := 1 to n do
  r: string := call echo(payload) at 1
 end
end";

const CALLS: u64 = 25;

fn run(monitor: bool, debug_support: bool, entry: &str, args: Vec<Value>) -> (u64, u64) {
    let mut w = World::builder()
        .nodes(2)
        .program(PROGRAM)
        .rpc(RpcConfig {
            monitor,
            debug_support,
            ..Default::default()
        })
        .debugger(false)
        .build()
        .expect("world builds");
    w.spawn(0, entry, args);
    w.run_until_idle(SimTime::from_secs(120));
    let stats = w.endpoint(0).stats();
    assert_eq!(stats.completed, CALLS);
    let observations =
        w.endpoint(0).monitor().observations() + w.endpoint(1).monitor().observations();
    (stats.mean_latency().as_micros(), observations)
}

fn main() {
    let mut table = Table::new(
        "E2: rejected packet-monitor design vs final design (§4.2 vs §4.3)",
        "monitoring work ~= RPC implementation work => RPCs take ~2x as long",
    )
    .headers([
        "workload",
        "plain",
        "final design (§4.3)",
        "packet monitor (§4.2)",
        "monitor ratio",
        "pkts observed",
        "verdict",
    ]);

    let cases: [(&str, &str, Vec<Value>); 2] = [
        ("null RPC", "run_null", vec![Value::Int(CALLS as i64)]),
        (
            "128-byte string",
            "run_echo",
            vec![Value::Int(CALLS as i64), Value::Str("z".repeat(128).into())],
        ),
    ];

    for (name, entry, args) in cases {
        let (plain, _) = run(false, false, entry, args.clone());
        let (final_design, _) = run(false, true, entry, args.clone());
        let (monitored, obs) = run(true, false, entry, args.clone());
        let ratio = monitored as f64 / plain as f64;
        table.row([
            name.to_string(),
            fmt_us(plain),
            format!(
                "{} (+{})",
                fmt_us(final_design),
                fmt_us(final_design - plain)
            ),
            fmt_us(monitored),
            format!("{ratio:.2}x"),
            obs.to_string(),
            verdict((1.7..2.3).contains(&ratio)).to_string(),
        ]);
    }
    table.print();
    println!("\nThe monitor really reconstructs call state (it observed every");
    println!("packet above), but at ~2x the latency — which is why the paper");
    println!("moved the instrumentation into the RPC implementation itself.");
    println!("\nE2 complete.");
}
