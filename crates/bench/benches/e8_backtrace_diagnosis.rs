//! E8 — cross-node backtraces (Figure 1) and maybe-failure diagnosis (§4.1).
//!
//! Two artifacts from §4 that have no single number but define the
//! debugger's RPC feature set:
//!
//! * a stack backtrace that crosses node boundaries via the information
//!   blocks and call tables, over a three-tier in-progress call chain;
//! * classification of a failed `maybe` call as *lost call* vs *lost
//!   reply* by interrogating the server.

use pilgrim::{MaybeDiagnosis, NodeId, SimDuration, SimTime, World};
use pilgrim_bench::{verdict, Table};

const THREE_TIER: &str = "\
storage = proc (key: int) returns (int)
 sleep(120)
 return (key * 10)
end
middle = proc (key: int) returns (int)
 v: int := call storage(key) at 2
 return (v + 1)
end
main = proc ()
 r: int := call middle(4) at 1
 print(int$unparse(r))
end";

const MAYBE: &str = "\
update = proc (n: int) returns (int)
 return (n + 1)
end
main = proc ()
 ok: bool := true
 r: int := 0
 ok, r := maybecall update(1) at 1
 if ok then
  print(\"ok\")
 else
  print(\"failed\")
 end
 sleep(600000)
end";

fn main() {
    // Part 1: the Figure 1 backtrace.
    let mut w = World::builder()
        .nodes(3)
        .program(THREE_TIER)
        .build()
        .expect("world");
    w.debug_connect(&[0, 1, 2], false).expect("connect");
    let client = w.spawn(0, "main", vec![]).0;
    w.run_for(SimDuration::from_millis(50));
    let chain = w.distributed_backtrace(0, client).expect("backtrace");

    let mut t = Table::new(
        "E8a: distributed backtrace across an in-progress 3-tier call (Figure 1)",
        "client stub frames and server tables link the whole chain",
    )
    .headers(["frame", "node", "procedure:line", "kind", "rpc info"]);
    for (i, f) in chain.iter().enumerate() {
        t.row([
            format!("#{i}"),
            format!("node{}", f.node),
            format!(
                "{}:{}",
                f.proc_name,
                f.line.map(|l| l.to_string()).unwrap_or_else(|| "?".into())
            ),
            f.kind.clone(),
            f.rpc
                .as_ref()
                .map(|r| {
                    format!(
                        "call#{} {} [{}] {}",
                        r.call_id, r.remote_proc, r.protocol, r.state
                    )
                })
                .unwrap_or_default(),
        ]);
    }
    t.print();
    let nodes: Vec<u32> = chain.iter().map(|f| f.node).collect();
    assert!(nodes.contains(&0) && nodes.contains(&1) && nodes.contains(&2));
    assert_eq!(chain.last().unwrap().proc_name, "storage");
    w.run_until_idle(SimTime::from_secs(10));
    assert_eq!(w.console(0), vec!["41"]);

    // Part 2: lost call vs lost reply.
    let mut t = Table::new(
        "E8b: diagnosing a failed maybe call (§4.1)",
        "'the debugger ought to allow the programmer to find out which is the case'",
    )
    .headers([
        "injected fault",
        "client saw",
        "server knowledge",
        "diagnosis",
        "verdict",
    ]);
    for drop_call in [true, false] {
        let mut w = World::builder()
            .nodes(2)
            .program(MAYBE)
            .build()
            .expect("world");
        w.debug_connect(&[0, 1], false).expect("connect");
        if drop_call {
            w.net_mut().drop_next(NodeId(0), NodeId(1), 1);
        } else {
            w.net_mut().drop_next(NodeId(1), NodeId(0), 1);
        }
        w.spawn(0, "main", vec![]);
        w.run_for(SimDuration::from_millis(300));
        let (call_id, ok) = *w.recent_calls(0).expect("recent").last().expect("one call");
        let diagnosis = w.diagnose_maybe_failure(1, call_id).expect("diagnosis");
        let expected = if drop_call {
            MaybeDiagnosis::LostCall
        } else {
            MaybeDiagnosis::LostReply
        };
        t.row([
            if drop_call {
                "call packet dropped"
            } else {
                "reply packet dropped"
            }
            .to_string(),
            format!("call#{call_id} ok={ok}"),
            format!("{diagnosis:?}"),
            if diagnosis == MaybeDiagnosis::LostCall {
                "safe to retry".to_string()
            } else {
                "side effects happened!".to_string()
            },
            verdict(diagnosis == expected).to_string(),
        ]);
        assert_eq!(diagnosis, expected);
    }
    t.print();
    println!("\nE8 complete.");
}
