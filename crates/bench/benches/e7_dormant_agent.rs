//! E7 — the dormant agent imposes no overhead (§1, §3).
//!
//! Paper: "any debugging support included in the object program must not
//! adversely affect the program's performance when it is not under control
//! of the debugger" — the whole reason programmers can leave the agent
//! linked in once "all the bugs are out".
//!
//! The harness times a CPU+RPC workload in four configurations: no agent
//! at all; agent linked but dormant; debugger connected but idle; and (as
//! the one deliberate cost of debuggability) the permanent §4.3 RPC
//! instrumentation removed.

use pilgrim::{RpcConfig, SimDuration, SimTime, Value, World};
use pilgrim_bench::{fmt_us, verdict, Table};

const PROGRAM: &str = "\
work = proc (n: int) returns (int)
 t: int := 0
 for i: int := 1 to n do
  t := t + i * i
 end
 return (t)
end
main = proc (iters: int)
 acc: int := 0
 for i: int := 1 to iters do
  acc := acc + work(200)
  r: int := call work(50) at 1
  acc := acc + r
 end
 print(int$unparse(acc))
 print(int$unparse(now()))
end";

/// Runs the workload and returns (output, finish time in logical ms,
/// mean RPC latency µs).
fn run(agents: bool, connect: bool, rpc_debug: bool) -> (String, i64, u64) {
    let mut w = World::builder()
        .nodes(2)
        .program(PROGRAM)
        .agents(agents)
        .rpc(RpcConfig {
            debug_support: rpc_debug,
            ..Default::default()
        })
        .build()
        .expect("world");
    if connect {
        w.debug_connect(&[0, 1], false).expect("connect");
    }
    // Spawn at a fixed instant so finish times are comparable across
    // configurations regardless of how long connecting took.
    w.run_until(SimTime::from_millis(50));
    w.spawn(0, "main", vec![Value::Int(20)]);
    w.run_until_idle(SimTime::from_secs(120));
    let out = w.console(0);
    let acc = out.first().cloned().unwrap_or_default();
    let finished: i64 = out.get(1).and_then(|s| s.parse().ok()).unwrap_or(-1);
    (
        acc,
        finished,
        w.endpoint(0).stats().mean_latency().as_micros(),
    )
}

fn main() {
    let (acc_none, t_none, rpc_none) = run(false, false, true);
    let (acc_dormant, t_dormant, rpc_dormant) = run(true, false, true);
    let (acc_idle, t_idle, rpc_idle) = run(true, true, true);
    let (acc_strip, t_strip, rpc_strip) = run(false, false, false);

    let mut table = Table::new(
        "E7: workload cost vs debugging support present (§1, §3)",
        "dormant agent: no overhead; connected-but-idle debugger: no overhead; \
         the only permanent cost is the §4.3 RPC instrumentation (~400us/call)",
    )
    .headers([
        "configuration",
        "result",
        "finished at",
        "mean RPC",
        "verdict",
    ]);

    table.row([
        "no agent, no debugger".to_string(),
        acc_none.clone(),
        format!("{t_none}ms"),
        fmt_us(rpc_none),
        "baseline".to_string(),
    ]);
    table.row([
        "agent linked, dormant".to_string(),
        acc_dormant.clone(),
        format!("{t_dormant}ms"),
        fmt_us(rpc_dormant),
        verdict(acc_dormant == acc_none && t_dormant == t_none).to_string(),
    ]);
    table.row([
        "debugger connected, idle".to_string(),
        acc_idle.clone(),
        format!("{t_idle}ms"),
        fmt_us(rpc_idle),
        verdict(acc_idle == acc_none && t_idle == t_none).to_string(),
    ]);
    table.row([
        "RPC debug support stripped".to_string(),
        acc_strip.clone(),
        format!("{t_strip}ms"),
        fmt_us(rpc_strip),
        verdict(rpc_none - rpc_strip == 400).to_string(),
    ]);
    table.print();

    assert_eq!(acc_dormant, acc_none);
    assert_eq!(t_dormant, t_none, "dormant agent must not perturb timing");
    assert_eq!(t_idle, t_none, "idle debugger must not perturb timing");
    assert_eq!(
        rpc_none - rpc_strip,
        400,
        "the 400us is the only permanent cost"
    );
    let _ = SimDuration::ZERO;
    println!("\nE7 complete.");
}
