//! E1 — RPC debugging-support overhead (§4.3).
//!
//! Paper: "The effect of these changes to the RPC mechanism is to increase
//! the time for an RPC by 400 µs. For a null RPC ... this represents a
//! slow-down by 2.5 %. On more typical RPCs the slow-down is much less."
//!
//! The harness measures mean client-observed RPC latency with the §4.3
//! instrumentation (information blocks, call tables, ten-slot cyclic
//! buffer) compiled in vs out, for a null RPC and increasingly large
//! payloads.

use pilgrim::{RpcConfig, SimDuration, SimTime, Value, World};
use pilgrim_bench::{fmt_us, verdict, Table};

const PROGRAM: &str = "\
ping = proc ()
end
echo = proc (s: string) returns (string)
 return (s)
end
sum = proc (xs: array[int]) returns (int)
 t: int := 0
 n: int := len(xs)
 for i: int := 0 to n - 1 do
  t := t + xs[i]
 end
 return (t)
end
run_null = proc (n: int)
 for i: int := 1 to n do
  call ping() at 1
 end
end
run_echo = proc (n: int, payload: string)
 for i: int := 1 to n do
  r: string := call echo(payload) at 1
 end
end
run_sum = proc (n: int, xs: array[int])
 for i: int := 1 to n do
  r: int := call sum(xs) at 1
 end
end";

const CALLS: i64 = 25;

fn measure(debug_support: bool, entry: &str, args: Vec<Value>) -> u64 {
    let mut w = World::builder()
        .nodes(2)
        .program(PROGRAM)
        .rpc(RpcConfig {
            debug_support,
            ..Default::default()
        })
        .debugger(false)
        .build()
        .expect("world builds");
    w.spawn(0, entry, args);
    w.run_until_idle(SimTime::from_secs(120));
    let stats = w.endpoint(0).stats();
    assert_eq!(stats.completed, CALLS as u64, "all calls must complete");
    stats.mean_latency().as_micros()
}

fn int_array(w: &mut World, n: i64) -> Value {
    use pilgrim_cclu::{HeapObject, Value as V};
    let items: Vec<V> = (0..n).map(V::Int).collect();
    V::Ref(w.node_mut(0).heap_mut().alloc(HeapObject::Array(items)))
}

fn main() {
    let mut table = Table::new(
        "E1: RPC debug-support overhead (§4.3)",
        "+400us per call; 2.5% on a null RPC; much less on typical RPCs",
    )
    .headers([
        "workload",
        "no support",
        "with support",
        "overhead",
        "slowdown",
        "paper",
        "verdict",
    ]);

    type MakeArgs = Box<dyn Fn(&mut World) -> Vec<Value>>;
    let cases: Vec<(&str, &str, MakeArgs)> = vec![
        (
            "null RPC",
            "run_null",
            Box::new(|_| vec![Value::Int(CALLS)]),
        ),
        (
            "64-byte string",
            "run_echo",
            Box::new(|_| vec![Value::Int(CALLS), Value::Str("x".repeat(64).into())]),
        ),
        (
            "512-byte string",
            "run_echo",
            Box::new(|_| vec![Value::Int(CALLS), Value::Str("y".repeat(512).into())]),
        ),
        (
            "array of 200 ints",
            "run_sum",
            Box::new(|w| vec![Value::Int(CALLS), int_array(w, 200)]),
        ),
    ];

    let mut null_pct = 0.0;
    for (i, (name, entry, mkargs)) in cases.iter().enumerate() {
        // Build twice so arg construction can use each world's heap.
        let base = {
            let mut w = World::builder()
                .nodes(2)
                .program(PROGRAM)
                .rpc(RpcConfig {
                    debug_support: false,
                    ..Default::default()
                })
                .debugger(false)
                .build()
                .unwrap();
            let args = mkargs(&mut w);
            w.spawn(0, entry, args);
            w.run_until_idle(SimTime::from_secs(120));
            w.endpoint(0).stats().mean_latency().as_micros()
        };
        let with = {
            let mut w = World::builder()
                .nodes(2)
                .program(PROGRAM)
                .rpc(RpcConfig {
                    debug_support: true,
                    ..Default::default()
                })
                .debugger(false)
                .build()
                .unwrap();
            let args = mkargs(&mut w);
            w.spawn(0, entry, args);
            w.run_until_idle(SimTime::from_secs(120));
            w.endpoint(0).stats().mean_latency().as_micros()
        };
        let overhead = with.saturating_sub(base);
        let pct = overhead as f64 / base as f64 * 100.0;
        if i == 0 {
            null_pct = pct;
        }
        let (expect, ok) = if i == 0 {
            ("400us / 2.5%", overhead == 400 && (2.0..3.0).contains(&pct))
        } else {
            ("much less", overhead == 400 && pct < null_pct)
        };
        table.row([
            name.to_string(),
            fmt_us(base),
            fmt_us(with),
            fmt_us(overhead),
            format!("{pct:.2}%"),
            expect.to_string(),
            verdict(ok).to_string(),
        ]);
    }
    table.print();

    // Keep the simple single-case API exercised too.
    let sanity = measure(true, "run_null", vec![Value::Int(CALLS)]);
    assert!(
        sanity > 15_000,
        "null RPC latency should be ~16 ms, got {}",
        fmt_us(sanity)
    );
    let _ = SimDuration::from_micros(sanity);
    println!("\nE1 complete.");
}
