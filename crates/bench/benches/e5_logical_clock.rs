//! E5 — logical-clock consistency across nodes (§5.2, §6.1).
//!
//! Paper: each node keeps a delta from real time; when the program resumes
//! from a breakpoint every agent folds its own halt duration into its
//! delta. "The logical times at each node of a program being debugged
//! should be almost the same" and the debugger's breakpoint log "will be
//! almost the same as the logical time deltas at all nodes."
//!
//! The harness runs a cohort through several halts of different lengths
//! and compares: per-node deltas, their spread, the breakpoint-log total,
//! and the user program's view (time must never jump).

use pilgrim::{SimDuration, SimTime, Value, World};
use pilgrim_bench::{fmt_us, verdict, Table};

const PROGRAM: &str = "\
% Ticks every 100ms and records the logical interval it observed.
ticker = proc (count: int)
 prev: int := now()
 for i: int := 1 to count do
  sleep(100)
  t: int := now()
  print(int$unparse(t - prev))
  prev := t
 end
end";

fn main() {
    let nodes = 4u32;
    let halts_ms = [500u64, 1_500, 250, 3_000];

    let mut w = World::builder()
        .nodes(nodes)
        .program(PROGRAM)
        .build()
        .expect("world");
    w.debug_connect(&(0..nodes).collect::<Vec<_>>(), false)
        .expect("connect");
    for n in 0..nodes {
        w.spawn(n, "ticker", vec![Value::Int(60)]);
    }
    w.run_for(SimDuration::from_millis(350));

    for (i, h) in halts_ms.iter().enumerate() {
        w.debug_halt_all(i as u32 % nodes).expect("halt");
        w.run_for(SimDuration::from_millis(*h));
        w.debug_resume_all().expect("resume");
        w.run_for(SimDuration::from_millis(400));
    }
    w.run_until_idle(w.now() + SimDuration::from_secs(30));

    let mut table = Table::new(
        "E5: per-node logical-clock deltas after four halts (§5.2)",
        "deltas agree across nodes to within the halt-broadcast spread; \
         the breakpoint log matches them",
    )
    .headers([
        "node",
        "delta",
        "vs log total",
        "max tick observed",
        "verdict",
    ]);

    let log_total = w
        .debugger()
        .unwrap()
        .log()
        .borrow()
        .total_halted(w.now())
        .as_micros();
    let mut deltas = Vec::new();
    let mut all_ok = true;
    for n in 0..nodes {
        let delta = w.node(n).delta().as_micros();
        deltas.push(delta);
        // The program's own view: every observed interval stays ~100 ms —
        // the halts (up to 3 s!) are invisible.
        let max_tick: i64 = w
            .console(n)
            .iter()
            .filter_map(|s| s.parse::<i64>().ok())
            .max()
            .unwrap_or(0);
        let ok = delta.abs_diff(log_total) < 100_000 && max_tick < 200;
        all_ok &= ok;
        table.row([
            format!("node{n}"),
            fmt_us(delta),
            format!("{:+}us", delta as i64 - log_total as i64),
            format!("{max_tick}ms"),
            verdict(ok).to_string(),
        ]);
    }
    table.print();

    let spread = deltas.iter().max().unwrap() - deltas.iter().min().unwrap();
    let total: u64 = halts_ms.iter().sum::<u64>() * 1_000;
    println!("\nbreakpoint-log total halted: {}", fmt_us(log_total));
    println!("requested halt time:         {}", fmt_us(total));
    println!(
        "cross-node delta spread:     {} (halt-broadcast serialization)",
        fmt_us(spread)
    );
    assert!(all_ok);
    assert!(
        spread < 50_000,
        "spread must stay within the broadcast window"
    );
    assert!(
        log_total >= total,
        "log covers at least the requested halts"
    );
    let _ = SimTime::ZERO;
    println!("\nE5 complete.");
}
