//! E4 — the Figure 2 semaphore-timeout race (§5.1–5.2).
//!
//! Process Q on node B waits on a semaphore with a timeout. A breakpoint
//! halts the program mid-wait for two full seconds. A debugger without the
//! paper's supervisor support lets Q's timeout expire *during* the halt —
//! Q observes a wait far shorter than its timeout, a computation that
//! could never have happened without the debugger (atypical). Pilgrim's
//! frozen timeouts preserve the full wait regardless of where the
//! breakpoint lands.
//!
//! The harness sweeps the breakpoint's position through the wait and
//! reports the wait Q observed on its own (logical) clock.

use pilgrim::{NodeConfig, SimDuration, Value, World};
use pilgrim_bench::{verdict, Table};

const TIMEOUT_MS: i64 = 1_000;

const PROGRAM: &str = "\
% node 1: Q waits; prints the wait it observed on its logical clock.
arm = proc (timeout: int) returns (bool)
 fork q_process(timeout)
 return (true)
end
q_process = proc (timeout: int)
 s: sem := sem$create(0)
 before: int := now()
 ok: bool := sem$wait(s, timeout)
 after: int := now()
 print(int$unparse(after - before))
end
% node 0: P arms the race, then hits a breakpoint bp_at ms later.
p_process = proc (timeout: int, bp_at: int)
 ok: bool := call arm(timeout) at 1
 sleep(bp_at)
 marker()
 sleep(600000)
end
marker = proc ()
 x: int := 1
end";

/// Runs the scenario; returns the wait Q observed (logical ms).
fn run(freeze: bool, bp_at_ms: i64) -> i64 {
    let mut w = World::builder()
        .nodes(2)
        .program(PROGRAM)
        .node_config(NodeConfig {
            freeze_timeouts_on_halt: freeze,
            ..Default::default()
        })
        .build()
        .expect("world builds");
    w.debug_connect(&[0, 1], false).expect("connect");
    w.break_at_line(0, 17).expect("breakpoint at marker()");
    w.spawn(
        0,
        "p_process",
        vec![Value::Int(TIMEOUT_MS), Value::Int(bp_at_ms)],
    );
    w.wait_for_stop(SimDuration::from_secs(10))
        .expect("breakpoint hit");
    // The programmer thinks for 2 seconds — twice Q's remaining timeout.
    w.run_for(SimDuration::from_secs(2));
    w.debug_resume_all().expect("resume");
    w.run_until_idle(w.now() + SimDuration::from_secs(10));
    let out = w.console(1);
    out.first().and_then(|s| s.parse().ok()).unwrap_or(-1)
}

fn main() {
    let mut table = Table::new(
        "E4: Q's observed wait when a 2s halt lands mid-timeout (Figure 2)",
        "a typical computation requires Q to observe its full 1000ms wait; \
         naive halting lets the timeout fire during the interruption",
    )
    .headers([
        "breakpoint at",
        "naive halt: Q waited",
        "atypical?",
        "Pilgrim: Q waited",
        "atypical?",
        "verdict",
    ]);

    // Q starts waiting ~8ms after P arms; sweep the breakpoint through
    // the 1000ms window.
    let mut all_ok = true;
    for bp_at in [100i64, 300, 500, 700, 900] {
        let naive = run(false, bp_at);
        let pilgrim = run(true, bp_at);
        // "Typical" = within scheduling noise of the full timeout.
        let naive_atypical = !(TIMEOUT_MS..TIMEOUT_MS + 50).contains(&naive);
        let pilgrim_typical = (TIMEOUT_MS..TIMEOUT_MS + 50).contains(&pilgrim);
        let ok = naive_atypical && pilgrim_typical;
        all_ok &= ok;
        table.row([
            format!("{bp_at}ms into the wait"),
            format!("{naive}ms"),
            if naive_atypical {
                "YES".into()
            } else {
                "no".to_string()
            },
            format!("{pilgrim}ms"),
            if pilgrim_typical {
                "no".into()
            } else {
                "YES".to_string()
            },
            verdict(ok).to_string(),
        ]);
    }
    table.print();
    assert!(
        all_ok,
        "Pilgrim must preserve the typical computation at every offset"
    );

    window_race();
    println!("\nE4 complete.");
}

/// E4b — the transparency *limit* (§5.2): "in such cases the strict
/// requirements of transparent halting may not always be fulfilled".
///
/// P's signalling RPC is already in flight when the breakpoint fires; Q's
/// timeout expires δ ms after the breakpoint. The halt reaches Q's node
/// ~3.5 ms after the breakpoint and the in-flight signal ~8 ms after it,
/// so for δ inside (3.5 ms, ~8 ms) even Pilgrim produces an outcome that
/// differs from the undebugged run — exactly the window the paper derives
/// from the 3.5 ms basic block vs the 8 ms RPC.
fn window_race() {
    const RACE: &str = "\
own gate: sem := sem$create(0)
q_process = proc (timeout: int)
 ok: bool := sem$wait(gate, timeout)
 if ok then
  print(\"signalled\")
 else
  print(\"timed out\")
 end
end
poke = proc () returns (bool)
 sem$signal(gate)
 return (true)
end
sender = proc (fire_at: int)
 sleep(fire_at)
 ok: bool := true
 r: bool := false
 ok, r := maybecall poke() at 1
end
p_process = proc (bp_at: int)
 sleep(bp_at)
 marker()
 sleep(600000)
end
marker = proc ()
 x: int := 1
end";

    let run = |debugged: bool, q_timeout_ms: i64| -> String {
        let mut w = World::builder()
            .nodes(2)
            .program(RACE)
            .build()
            .expect("world");
        if debugged {
            w.debug_connect(&[0, 1], false).expect("connect");
            // marker() line:
            w.break_at_proc(0, "marker").expect("breakpoint");
        }
        // Q starts waiting immediately on node 1; the sender fires its RPC
        // at t = 100 ms; the breakpoint lands 1 ms later.
        w.node_mut(1)
            .spawn(
                "q_process",
                vec![Value::Int(q_timeout_ms)],
                Default::default(),
            )
            .unwrap();
        w.spawn(0, "sender", vec![Value::Int(100)]);
        w.spawn(0, "p_process", vec![Value::Int(101)]);
        if debugged {
            w.wait_for_stop(SimDuration::from_secs(5)).expect("stop");
            w.run_for(SimDuration::from_secs(2));
            w.debug_resume_all().expect("resume");
        }
        w.run_until_idle(w.now() + SimDuration::from_secs(10));
        w.console(1)
            .first()
            .cloned()
            .unwrap_or_else(|| "hung".into())
    };

    let mut t = Table::new(
        "E4b: transparency window — Q expiry δ after the breakpoint, signal in flight",
        "halt reaches Q at +3.5ms, the in-flight signal at ~+8ms: outcomes may \
         diverge for δ between them (the paper's >2-node caveat)",
    )
    .headers([
        "Q expiry (δ after bp)",
        "undebugged run",
        "under Pilgrim",
        "transparent?",
    ]);

    let mut divergences = 0;
    for delta in [2i64, 5, 20] {
        let q_timeout = 101 + delta; // Q waits from ~t0; bp at 101 ms
        let base = run(false, q_timeout);
        let dbg = run(true, q_timeout);
        let transparent = base == dbg;
        if !transparent {
            divergences += 1;
        }
        t.row([
            format!("{delta}ms"),
            base,
            dbg,
            if transparent {
                "yes".into()
            } else {
                "NO (atypical)".to_string()
            },
        ]);
    }
    t.print();
    println!(
        "\ndivergent outcomes: {divergences} — nonzero, confined to the window, \
         as §5.2 predicts"
    );
    assert!(
        divergences >= 1,
        "the transparency window must be observable"
    );
}
