//! M1 — Criterion micro-benchmarks of the simulation substrate.
//!
//! These measure the *harness's* wall-clock performance (how fast the
//! reproduction simulates), not any paper number: compiler throughput, VM
//! stepping, marshalling, the event queue, the ring, and a full null-RPC
//! round trip through the whole world.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pilgrim::{SimTime, Value, World};
use pilgrim_cclu::{compile, ExecEnv, Heap, StepOutcome, VmProcess};
use pilgrim_rpc::{marshal, unmarshal};
use pilgrim_sim::{EventQueue, SimDuration};

const FIB: &str = "\
fib = proc (n: int) returns (int)
 if n < 2 then
  return (n)
 end
 return (fib(n - 1) + fib(n - 2))
end
main = proc () returns (int)
 return (fib(15))
end";

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compiler");
    g.throughput(Throughput::Bytes(FIB.len() as u64));
    g.bench_function("compile_fib", |b| {
        b.iter(|| compile(std::hint::black_box(FIB)).unwrap())
    });
    g.finish();
}

/// A no-op syscall provider for raw VM stepping.
struct NullSys;
impl pilgrim_cclu::Syscalls for NullSys {
    fn now_ms(&mut self) -> i64 {
        0
    }
    fn pid(&mut self) -> i64 {
        1
    }
    fn node_id(&mut self) -> i64 {
        0
    }
    fn random(&mut self, bound: i64) -> i64 {
        bound - 1
    }
    fn print(&mut self, _text: &str) {}
    fn sem_create(&mut self, _count: i64) -> u32 {
        0
    }
    fn sem_wait(&mut self, _s: u32, _t: i64) -> pilgrim_cclu::SysReply {
        pilgrim_cclu::SysReply::Val(vec![Value::Bool(true)])
    }
    fn sem_signal(&mut self, _s: u32) {}
    fn mutex_create(&mut self) -> u32 {
        0
    }
    fn mutex_lock(&mut self, _m: u32) -> pilgrim_cclu::SysReply {
        pilgrim_cclu::SysReply::Val(vec![])
    }
    fn mutex_unlock(&mut self, _m: u32) {}
    fn fork(&mut self, _p: pilgrim_cclu::ProcId, _a: Vec<Value>) -> i64 {
        2
    }
    fn sleep(&mut self, _ms: i64) -> pilgrim_cclu::SysReply {
        pilgrim_cclu::SysReply::Val(vec![])
    }
    fn rpc(&mut self, _r: pilgrim_cclu::RpcRequest) -> pilgrim_cclu::SysReply {
        unreachable!("no rpc in fib")
    }
}

fn bench_vm(c: &mut Criterion) {
    let program = compile(FIB).unwrap();
    let entry = program.proc_by_name("main").unwrap();
    c.bench_function("vm/fib15_to_completion", |b| {
        b.iter(|| {
            let mut heap = Heap::new();
            let mut globals: Vec<Value> = vec![];
            let mut sys = NullSys;
            let mut p = VmProcess::spawn(entry, vec![]);
            loop {
                let mut env = ExecEnv {
                    heap: &mut heap,
                    program: &program,
                    globals: &mut globals,
                    sys: &mut sys,
                };
                match pilgrim_cclu::step(&mut p, &mut env) {
                    StepOutcome::Exited { .. } => break,
                    StepOutcome::Faulted { fault, .. } => panic!("{fault}"),
                    _ => {}
                }
            }
            std::hint::black_box(p.exit_values)
        })
    });
}

fn bench_marshal(c: &mut Criterion) {
    let mut heap = Heap::new();
    let arr = heap.alloc(pilgrim_cclu::HeapObject::Array(
        (0..64).map(Value::Int).collect(),
    ));
    let rec = heap.alloc(pilgrim_cclu::HeapObject::Record {
        type_name: "blob".into(),
        fields: vec![
            Value::Str("payload".into()),
            Value::Ref(arr),
            Value::Bool(true),
        ],
    });
    let v = Value::Ref(rec);
    c.bench_function("rpc/marshal_unmarshal_record", |b| {
        b.iter(|| {
            let w = marshal(&heap, std::hint::black_box(&v)).unwrap();
            let mut dst = Heap::new();
            std::hint::black_box(unmarshal(&mut dst, &w))
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("sim/event_queue_1k_schedule_pop", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.schedule(SimTime::from_micros((i * 7) % 997), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            std::hint::black_box(sum)
        })
    });
}

fn bench_world_rpc(c: &mut Criterion) {
    const PROGRAM: &str = "\
ping = proc ()
end
main = proc (n: int)
 for i: int := 1 to n do
  call ping() at 1
 end
end";
    c.bench_function("world/20_null_rpcs_simulated", |b| {
        b.iter(|| {
            let mut w = World::builder()
                .nodes(2)
                .program(PROGRAM)
                .debugger(false)
                .build()
                .unwrap();
            w.spawn(0, "main", vec![Value::Int(20)]);
            w.run_until_idle(SimTime::from_secs(60));
            assert_eq!(w.endpoint(0).stats().completed, 20);
            std::hint::black_box(w.now())
        })
    });
    let _ = SimDuration::ZERO;
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(4));
    targets = bench_compile, bench_vm, bench_marshal, bench_event_queue, bench_world_rpc
}
criterion_main!(benches);
