//! M1 — micro-benchmarks of the simulation substrate.
//!
//! These measure the *harness's* wall-clock performance (how fast the
//! reproduction simulates), not any paper number: compiler throughput, VM
//! stepping, marshalling, the event queue, and a full null-RPC round trip
//! through the whole world. Timing uses the in-repo
//! [`pilgrim_bench::runner`] (warmup + sampled min/median/p95); results
//! are printed as a table and written to `BENCH_micro.json` at the
//! workspace root so the bench trajectory is tracked across PRs.

use pilgrim::{SimTime, Value, World};
use pilgrim_bench::runner::{self, BenchResult};
use pilgrim_bench::Table;
use pilgrim_cclu::{compile, ExecEnv, Heap, StepOutcome, VmProcess};
use pilgrim_rpc::{marshal, unmarshal};
use pilgrim_sim::{EventQueue, SimDuration};

const FIB: &str = "\
fib = proc (n: int) returns (int)
 if n < 2 then
  return (n)
 end
 return (fib(n - 1) + fib(n - 2))
end
main = proc () returns (int)
 return (fib(15))
end";

fn bench_compile() -> BenchResult {
    runner::run("compiler/compile_fib", || {
        std::hint::black_box(compile(std::hint::black_box(FIB)).unwrap());
    })
}

/// A no-op syscall provider for raw VM stepping.
struct NullSys;
impl pilgrim_cclu::Syscalls for NullSys {
    fn now_ms(&mut self) -> i64 {
        0
    }
    fn pid(&mut self) -> i64 {
        1
    }
    fn node_id(&mut self) -> i64 {
        0
    }
    fn random(&mut self, bound: i64) -> i64 {
        bound - 1
    }
    fn print(&mut self, _text: &str) {}
    fn sem_create(&mut self, _count: i64) -> u32 {
        0
    }
    fn sem_wait(&mut self, _s: u32, _t: i64) -> pilgrim_cclu::SysReply {
        pilgrim_cclu::SysReply::Val(vec![Value::Bool(true)])
    }
    fn sem_signal(&mut self, _s: u32) {}
    fn mutex_create(&mut self) -> u32 {
        0
    }
    fn mutex_lock(&mut self, _m: u32) -> pilgrim_cclu::SysReply {
        pilgrim_cclu::SysReply::Val(vec![])
    }
    fn mutex_unlock(&mut self, _m: u32) {}
    fn fork(&mut self, _p: pilgrim_cclu::ProcId, _a: Vec<Value>) -> i64 {
        2
    }
    fn sleep(&mut self, _ms: i64) -> pilgrim_cclu::SysReply {
        pilgrim_cclu::SysReply::Val(vec![])
    }
    fn rpc(&mut self, _r: pilgrim_cclu::RpcRequest) -> pilgrim_cclu::SysReply {
        unreachable!("no rpc in fib")
    }
}

fn bench_vm() -> BenchResult {
    let program = compile(FIB).unwrap();
    let entry = program.proc_by_name("main").unwrap();
    runner::run("vm/fib15_to_completion", || {
        let mut heap = Heap::new();
        let mut globals: Vec<Value> = vec![];
        let mut sys = NullSys;
        let mut p = VmProcess::spawn(entry, vec![]);
        loop {
            let mut env = ExecEnv {
                heap: &mut heap,
                program: &program,
                globals: &mut globals,
                sys: &mut sys,
            };
            match pilgrim_cclu::step(&mut p, &mut env) {
                StepOutcome::Exited { .. } => break,
                StepOutcome::Faulted { fault, .. } => panic!("{fault}"),
                _ => {}
            }
        }
        std::hint::black_box(&p.exit_values);
    })
}

fn bench_marshal() -> BenchResult {
    let mut heap = Heap::new();
    let arr = heap.alloc(pilgrim_cclu::HeapObject::Array(
        (0..64).map(Value::Int).collect(),
    ));
    let rec = heap.alloc(pilgrim_cclu::HeapObject::Record {
        type_name: "blob".into(),
        fields: vec![
            Value::Str("payload".into()),
            Value::Ref(arr),
            Value::Bool(true),
        ],
    });
    let v = Value::Ref(rec);
    runner::run("rpc/marshal_unmarshal_record", || {
        let w = marshal(&heap, std::hint::black_box(&v)).unwrap();
        let mut dst = Heap::new();
        std::hint::black_box(unmarshal(&mut dst, &w));
    })
}

fn bench_event_queue() -> BenchResult {
    runner::run("sim/event_queue_1k_schedule_pop", || {
        let mut q = EventQueue::new();
        for i in 0..1_000u64 {
            q.schedule(SimTime::from_micros((i * 7) % 997), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        std::hint::black_box(sum);
    })
}

fn bench_world_rpc() -> BenchResult {
    const PROGRAM: &str = "\
ping = proc ()
end
main = proc (n: int)
 for i: int := 1 to n do
  call ping() at 1
 end
end";
    let result = runner::run("world/20_null_rpcs_simulated", || {
        let mut w = World::builder()
            .nodes(2)
            .program(PROGRAM)
            .debugger(false)
            .build()
            .unwrap();
        w.spawn(0, "main", vec![Value::Int(20)]);
        w.run_until_idle(SimTime::from_secs(60));
        assert_eq!(w.endpoint(0).stats().completed, 20);
        std::hint::black_box(w.now());
    });
    let _ = SimDuration::ZERO;
    result
}

fn main() {
    let results = vec![
        bench_compile(),
        bench_vm(),
        bench_marshal(),
        bench_event_queue(),
        bench_world_rpc(),
    ];

    let mut table = Table::new(
        "M1 — substrate micro-benchmarks",
        "harness speed, not a paper claim (per-iteration wall clock)",
    )
    .headers(["benchmark", "min", "median", "p95", "iters/sample"]);
    for r in &results {
        table.row([
            r.name.clone(),
            runner::fmt_ns(r.min_ns),
            runner::fmt_ns(r.median_ns),
            runner::fmt_ns(r.p95_ns),
            r.iters_per_sample.to_string(),
        ]);
    }
    table.print();

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_micro.json");
    match runner::write_json(&path, &results) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
