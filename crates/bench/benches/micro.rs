//! M1 — micro-benchmarks of the simulation substrate.
//!
//! These measure the *harness's* wall-clock performance (how fast the
//! reproduction simulates), not any paper number: compiler throughput, VM
//! stepping, marshalling, the event queue (plain and cancel-heavy), bare
//! node stepping, and whole-world scenarios. The benchmark bodies live in
//! [`pilgrim_bench::suite`] (shared with the `compare` smoke binary);
//! timing uses the in-repo [`pilgrim_bench::runner`] (warmup + sampled
//! min/median/p95). Results are printed as a table and written to
//! `BENCH_micro.json` at the workspace root so the bench trajectory is
//! tracked across PRs.

use pilgrim_bench::runner::{self, Config};
use pilgrim_bench::{suite, Table};

fn main() {
    let results = suite::all(&Config::default());

    let mut table = Table::new(
        "M1 — substrate micro-benchmarks",
        "harness speed, not a paper claim (per-iteration wall clock)",
    )
    .headers(["benchmark", "min", "median", "p95", "iters/sample"]);
    for r in &results {
        table.row([
            r.name.clone(),
            runner::fmt_ns(r.min_ns),
            runner::fmt_ns(r.median_ns),
            runner::fmt_ns(r.p95_ns),
            r.iters_per_sample.to_string(),
        ]);
    }
    table.print();

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_micro.json");
    match runner::write_json(&path, &results) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
