//! E9 — resource contention with other users (§6.2).
//!
//! Paper: extending a debugged client's resource timeout "may be wrong if
//! the resource is very scarce and other clients require it. ... A simpler
//! approach has the server extending a timeout on some resource allocation
//! until a client, not under control of the same debugger, requests the
//! resource. At that point the resource is reclaimed and reallocated."
//!
//! Client 0 (debugged, halted) holds the only machine; client 2 asks for
//! one. The table compares the plain extension policy against the
//! reclaim-on-contention refinement.

use pilgrim::{SimDuration, Value, World};
use pilgrim_bench::{verdict, Table};
use pilgrim_services::{ResourceManager, RmConfig, RmEvent, TimeoutStrategy};

const CLIENT: &str = "\
extern rm_request = proc () returns (int)
extern rm_renew = proc (r: int) returns (bool)
hold = proc (svc: int)
 r: int := call rm_request() at svc
 print(\"granted \" || int$unparse(r))
 for i: int := 1 to 100 do
  sleep(1000)
  ok: bool := call rm_renew(r) at svc
 end
end
grab = proc (svc: int)
 r: int := call rm_request() at svc
 if r < 0 then
  print(\"denied\")
 else
  print(\"granted \" || int$unparse(r))
 end
end";

fn run(reclaim_on_contention: bool) -> (Vec<String>, Vec<String>, Vec<RmEvent>) {
    let mut w = World::builder()
        .nodes(3)
        .program(CLIENT)
        .build()
        .expect("world");
    let rm = ResourceManager::install(
        &mut w,
        1,
        RmConfig {
            resources: 1,
            lease: SimDuration::from_secs(2),
            strategy: TimeoutStrategy::IgnoreWhileDebugged,
            reclaim_on_contention,
            ..Default::default()
        },
    );
    w.debug_connect(&[0], false).expect("connect");
    w.spawn(0, "hold", vec![Value::Int(1)]);
    w.run_for(SimDuration::from_millis(500));

    // Halt the holder long enough that its lease is extended.
    w.debug_halt_all(0).expect("halt");
    w.run_for(SimDuration::from_secs(4));

    // Another (undebugged) client asks for a machine.
    w.spawn(2, "grab", vec![Value::Int(1)]);
    w.run_for(SimDuration::from_secs(1));
    w.debug_resume_all().expect("resume");
    w.run_for(SimDuration::from_secs(1));
    let events = rm.events().into_iter().map(|(_, e)| e).collect();
    (w.console(0), w.console(2), events)
}

fn main() {
    let mut table = Table::new(
        "E9: a scarce machine held by a halted, debugged client (§6.2)",
        "without the policy the other client is denied; with it the extended \
         allocation is reclaimed and reallocated",
    )
    .headers([
        "policy",
        "debugged holder",
        "other client",
        "manager log",
        "verdict",
    ]);

    for policy in [false, true] {
        let (holder, other, events) = run(policy);
        let reclaimed = events
            .iter()
            .any(|e| matches!(e, RmEvent::ReclaimedForContention { .. }));
        let other_got_it = other.iter().any(|l| l.starts_with("granted"));
        let ok = if policy {
            reclaimed && other_got_it
        } else {
            !reclaimed && other.contains(&"denied".to_string())
        };
        table.row([
            if policy {
                "reclaim-on-contention"
            } else {
                "extend unconditionally"
            }
            .to_string(),
            holder.first().cloned().unwrap_or_default(),
            other.first().cloned().unwrap_or_default(),
            format!(
                "{} events, reclaim={}",
                events.len(),
                if reclaimed { "yes" } else { "no" }
            ),
            verdict(ok).to_string(),
        ]);
        assert!(ok, "policy={policy}: {events:?}");
    }
    table.print();
    println!("\nE9 complete.");
}
