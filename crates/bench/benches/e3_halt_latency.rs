//! E3 — distributed halt latency (§5.2).
//!
//! Paper: halt messages go out serially as ~3.5 ms basic blocks on the
//! Cambridge Ring, while the fastest inter-node influence is an ~8 ms RPC.
//! "Thus we could be confident of contacting only two nodes in the time
//! available for halting remote processes." An Ethernet-style data-link
//! broadcast would reach every node at once.
//!
//! The harness plants a real breakpoint on node 0 of an N-node program,
//! lets it fire, and reads each node's halt instant from the trace. The
//! series is printed for the ring (serial) and Ethernet (broadcast) media.

use pilgrim::{AgentConfig, Medium, NetworkConfig, SimDuration, SimTime, World};
use pilgrim_bench::{fmt_us, Table};

/// The fastest way one node can observe another (minimum RPC latency,
/// §5.2 — ~8 ms one way in Mayflower).
const RPC_LATENCY_US: u64 = 8_000;

const PROGRAM: &str = "\
spin = proc ()
 i: int := 0
 while i < 100000000 do
  i := i + 1
  sleep(5)
 end
end
trigger = proc ()
 sleep(50)
 marker()
 sleep(600000)
end
marker = proc ()
 x: int := 1
end";

/// Returns per-node halt latency (µs) relative to the breakpoint instant.
fn run(nodes: u32, medium: Medium, broadcast_halt: bool) -> Vec<(u32, u64)> {
    let mut w = World::builder()
        .nodes(nodes)
        .program(PROGRAM)
        .network(NetworkConfig {
            medium,
            ..Default::default()
        })
        .agent(AgentConfig {
            broadcast_halt,
            ..Default::default()
        })
        .build()
        .expect("world builds");
    w.debug_connect(&(0..nodes).collect::<Vec<_>>(), false)
        .expect("connect");
    // Line 10 is `marker()` inside trigger; the trap fires ~50 ms in.
    w.break_at_line(0, 10).expect("breakpoint");
    for n in 1..nodes {
        w.spawn(n, "spin", vec![]);
    }
    w.spawn(0, "trigger", vec![]);
    let ev = w
        .wait_for_stop(SimDuration::from_secs(5))
        .expect("breakpoint hit");
    let origin_at = match ev {
        pilgrim::DebugEvent::BreakpointHit { at, .. } => at,
        other => panic!("unexpected {other:?}"),
    };
    w.run_for(SimDuration::from_millis(nodes as u64 * 10 + 50));

    // Halt instants from the structured trace.
    let mut out = Vec::new();
    for ev in w.tracer().events_in(pilgrim::TraceCategory::Debug) {
        if ev.message().contains("local processes halted") {
            out.push((ev.node.unwrap(), 0u64));
        } else if ev.message().contains("halted by broadcast") {
            out.push((
                ev.node.unwrap(),
                ev.time.saturating_since(origin_at).as_micros(),
            ));
        }
    }
    out.sort_by_key(|(_, t)| *t);
    w.debug_resume_all().ok();
    out
}

fn main() {
    let nodes = 6;
    let ring = run(nodes, Medium::CambridgeRing, false);
    let ether = run(nodes, Medium::Ethernet, true);

    let mut table = Table::new(
        "E3: time to halt each node after a breakpoint (§5.2)",
        "serial 3.5ms basic blocks vs ~8ms fastest RPC => only ~2 remote nodes \
         halt 'transparently'; Ethernet broadcast reaches all at once",
    )
    .headers([
        "halt order",
        "ring (serial)",
        "within 8ms RPC window?",
        "ethernet (broadcast)",
        "within window?",
    ]);

    let mut ring_within = 0;
    for i in 0..nodes as usize {
        let (rn, rt) = ring.get(i).copied().unwrap_or((999, 0));
        let (en, et) = ether.get(i).copied().unwrap_or((999, 0));
        let r_ok = rt <= RPC_LATENCY_US;
        if r_ok && rt > 0 {
            ring_within += 1;
        }
        table.row([
            format!("#{i}"),
            format!("node{rn} at +{}", fmt_us(rt)),
            if rt == 0 {
                "origin".into()
            } else {
                (if r_ok { "yes" } else { "NO" }).to_string()
            },
            format!("node{en} at +{}", fmt_us(et)),
            if et == 0 {
                "origin".into()
            } else {
                (if et <= RPC_LATENCY_US { "yes" } else { "NO" }).to_string()
            },
        ]);
    }
    table.print();

    println!(
        "\nremote nodes halted within the 8ms window on the ring: {ring_within} \
         (paper: 'confident of contacting only two nodes')"
    );
    assert_eq!(ring_within, 2, "the paper's two-node bound must reproduce");
    assert!(
        ether.iter().skip(1).all(|(_, t)| *t <= RPC_LATENCY_US),
        "Ethernet broadcast halts everyone at once"
    );

    // Scaling series: last-node halt latency vs cohort size.
    let mut scaling = Table::new(
        "E3b: time until the whole cohort is halted, vs cohort size",
        "serial transmission scales linearly on the ring; broadcast is flat",
    )
    .headers([
        "nodes",
        "ring: last node halted",
        "ethernet: last node halted",
    ]);
    for n in [2u32, 3, 4, 6, 8] {
        let r = run(n, Medium::CambridgeRing, false);
        let e = run(n, Medium::Ethernet, true);
        scaling.row([
            n.to_string(),
            fmt_us(r.iter().map(|(_, t)| *t).max().unwrap_or(0)),
            fmt_us(e.iter().map(|(_, t)| *t).max().unwrap_or(0)),
        ]);
    }
    scaling.print();
    let _ = SimTime::ZERO;
    println!("\nE3 complete.");
}
