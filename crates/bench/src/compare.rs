//! Diffing a fresh benchmark run against the committed baseline.
//!
//! `BENCH_micro.json` (workspace root) is written by `benches/micro.rs`
//! via [`crate::runner::to_json`]; this module parses it back (hand-rolled
//! — the workspace is hermetic, so no serde) and reports per-benchmark
//! deltas. There are no pass/fail thresholds: the binary exists so CI can
//! prove the suite executes offline and so humans get a quick trend read
//! without a full re-baseline.

use crate::runner::{fmt_ns, BenchResult};

/// One benchmark's median from a parsed baseline file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// Benchmark name, e.g. `vm/fib15_to_completion`.
    pub name: String,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: u64,
}

/// Parses the `(name, median_ns)` pairs out of a `BENCH_micro.json`
/// document. Tolerant of field order within an object as long as `name`
/// precedes the next object's `name` (which [`crate::runner::to_json`]
/// guarantees: one object per line).
pub fn parse_baseline(json: &str) -> Vec<Baseline> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name) = field_str(line, "name") else {
            continue;
        };
        let Some(median_ns) = field_u64(line, "median_ns") else {
            continue;
        };
        out.push(Baseline {
            name: name.to_string(),
            median_ns,
        });
    }
    out
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// A fresh result lined up against its baseline entry (if one exists).
#[derive(Debug, Clone)]
pub struct Delta {
    /// Benchmark name.
    pub name: String,
    /// Committed median, when the baseline has this benchmark.
    pub baseline_ns: Option<u64>,
    /// Fresh median from this run.
    pub fresh_ns: u64,
}

impl Delta {
    /// Signed percent change versus the baseline (positive = slower).
    pub fn percent(&self) -> Option<f64> {
        let base = self.baseline_ns?;
        if base == 0 {
            return None;
        }
        Some((self.fresh_ns as f64 - base as f64) / base as f64 * 100.0)
    }

    /// Human-readable delta column: `+12.3%`, `-40.1%`, or `new` when the
    /// baseline predates this benchmark.
    pub fn describe(&self) -> String {
        match self.percent() {
            Some(p) => format!("{p:+.1}%"),
            None => "new".to_string(),
        }
    }
}

/// Lines up fresh results against the baseline by name, preserving the
/// fresh run's order.
pub fn diff(baseline: &[Baseline], fresh: &[BenchResult]) -> Vec<Delta> {
    fresh
        .iter()
        .map(|r| Delta {
            name: r.name.clone(),
            baseline_ns: baseline
                .iter()
                .find(|b| b.name == r.name)
                .map(|b| b.median_ns),
            fresh_ns: r.median_ns,
        })
        .collect()
}

/// Renders one delta as a table row: name, baseline, fresh, delta.
pub fn row(d: &Delta) -> [String; 4] {
    [
        d.name.clone(),
        d.baseline_ns.map(fmt_ns).unwrap_or_else(|| "-".into()),
        fmt_ns(d.fresh_ns),
        d.describe(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::to_json;

    fn result(name: &str, median: u64) -> BenchResult {
        BenchResult {
            name: name.into(),
            samples: 3,
            iters_per_sample: 1,
            min_ns: median,
            median_ns: median,
            p95_ns: median,
        }
    }

    #[test]
    fn parse_round_trips_runner_json() {
        let json = to_json(&[result("a/b", 120), result("c/d", 99)]);
        let parsed = parse_baseline(&json);
        assert_eq!(
            parsed,
            vec![
                Baseline {
                    name: "a/b".into(),
                    median_ns: 120
                },
                Baseline {
                    name: "c/d".into(),
                    median_ns: 99
                },
            ]
        );
    }

    #[test]
    fn diff_matches_by_name_and_flags_new_benchmarks() {
        let base = vec![Baseline {
            name: "a/b".into(),
            median_ns: 200,
        }];
        let fresh = vec![result("a/b", 100), result("x/new", 7)];
        let deltas = diff(&base, &fresh);
        assert_eq!(deltas[0].percent(), Some(-50.0));
        assert_eq!(deltas[0].describe(), "-50.0%");
        assert_eq!(deltas[1].baseline_ns, None);
        assert_eq!(deltas[1].describe(), "new");
    }

    #[test]
    fn zero_baseline_reports_as_new() {
        let base = vec![Baseline {
            name: "a".into(),
            median_ns: 0,
        }];
        let deltas = diff(&base, &[result("a", 5)]);
        assert_eq!(deltas[0].percent(), None);
    }

    #[test]
    fn parse_skips_malformed_lines() {
        let parsed = parse_baseline("{\n  \"benchmarks\": [\n  ]\n}\nnot json at all");
        assert!(parsed.is_empty());
    }
}
