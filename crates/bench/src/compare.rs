//! Diffing a fresh benchmark run against the committed baseline.
//!
//! `BENCH_micro.json` (workspace root) is written by `benches/micro.rs`
//! via [`crate::runner::to_json`]; this module parses it back (hand-rolled
//! — the workspace is hermetic, so no serde) and reports per-benchmark
//! deltas. Most benchmarks are trend-read only, but the [`GATED`] set is
//! enforced: [`gate_failures`] turns an over-tolerance regression on a
//! gated benchmark into a CI failure, so the tracing-off hot path cannot
//! silently absorb observability cost.
//!
//! The table reports medians (the honest summary of a run), but the gate
//! compares the smoke run's *minimum* against the committed *median*: on
//! shared, single-core CI runners every smoke sample absorbs whatever
//! the noisy neighbour was doing — interference only ever adds time — so
//! the fastest of the few smoke samples is the closest observable to the
//! true cost, while the committed 20-sample median is the baseline's
//! typical cost. A fresh minimum that still exceeds the old typical by
//! the tolerance means the whole distribution moved, not the neighbour.

use crate::runner::{fmt_ns, BenchResult};

/// One benchmark's median from a parsed baseline file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// Benchmark name, e.g. `vm/fib15_to_completion`.
    pub name: String,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: u64,
}

/// Parses the `(name, median_ns)` pairs out of a `BENCH_micro.json`
/// document. Tolerant of field order within an object as long as `name`
/// precedes the next object's `name` (which [`crate::runner::to_json`]
/// guarantees: one object per line).
pub fn parse_baseline(json: &str) -> Vec<Baseline> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(name) = field_str(line, "name") else {
            continue;
        };
        let Some(median_ns) = field_u64(line, "median_ns") else {
            continue;
        };
        out.push(Baseline {
            name: name.to_string(),
            median_ns,
        });
    }
    out
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// A fresh result lined up against its baseline entry (if one exists).
#[derive(Debug, Clone)]
pub struct Delta {
    /// Benchmark name.
    pub name: String,
    /// Committed median, when the baseline has this benchmark.
    pub baseline_ns: Option<u64>,
    /// Fresh median from this run.
    pub fresh_ns: u64,
    /// Fresh minimum from this run — the gate statistic.
    pub fresh_min_ns: u64,
}

impl Delta {
    /// Signed percent change of the median versus the baseline (positive
    /// = slower). Drives the trend table.
    pub fn percent(&self) -> Option<f64> {
        let base = self.baseline_ns?;
        if base == 0 {
            return None;
        }
        Some((self.fresh_ns as f64 - base as f64) / base as f64 * 100.0)
    }

    /// Signed percent change of the fresh *minimum* versus the committed
    /// *median* (positive = slower). Drives the gate — see the module
    /// docs for why the gate compares these asymmetric statistics.
    pub fn gate_percent(&self) -> Option<f64> {
        let base = self.baseline_ns?;
        if base == 0 {
            return None;
        }
        Some((self.fresh_min_ns as f64 - base as f64) / base as f64 * 100.0)
    }

    /// Human-readable delta column: `+12.3%`, `-40.1%`, or `new` when the
    /// baseline predates this benchmark.
    pub fn describe(&self) -> String {
        match self.percent() {
            Some(p) => format!("{p:+.1}%"),
            None => "new".to_string(),
        }
    }
}

/// Lines up fresh results against the baseline by name, preserving the
/// fresh run's order.
pub fn diff(baseline: &[Baseline], fresh: &[BenchResult]) -> Vec<Delta> {
    fresh
        .iter()
        .map(|r| Delta {
            name: r.name.clone(),
            baseline_ns: baseline
                .iter()
                .find(|b| b.name == r.name)
                .map(|b| b.median_ns),
            fresh_ns: r.median_ns,
            fresh_min_ns: r.min_ns,
        })
        .collect()
}

/// Benchmarks the smoke run refuses to let regress, with the allowed
/// slowdown in percent. These two cover the tracing-off hot path: the
/// observability layer promises a near-zero disabled cost, so a
/// regression here means instrumentation leaked outside its `wants()`
/// guards. The tolerance is deliberately generous — the smoke
/// configuration takes only 3 samples on shared CI runners — while the
/// precise 5% budget is measured at every re-baseline and recorded in
/// EXPERIMENTS.md.
/// `node/step_storm` guards the profiler the same way: with
/// `profile_vm` off, the per-instruction cost of the profiling hooks is
/// one predictable branch, so the scheduler hot path must stay within 3%
/// of the committed baseline.
/// The two `1k_processes` rows guard the serial stepping path against
/// the parallel-stepping machinery: with `step_threads == 1` the pump
/// takes the exact pre-pool code path (no buffering, no pool), so the
/// single-node round-robin and the 8-node serial baseline of the
/// parallel family must both stay within 3% of the committed numbers.
/// `world/100k_processes` guards the quiescence-aware pump: its sparse
/// wake pattern collapses to a full 100-node scan per window if the
/// activity index stops pruning, so a regression past 3% means the
/// skip path quietly degraded back to O(nodes).
/// The two flight-recorder/time-series rows keep the always-on
/// observability honest: `obs/flight_recorder_on` is the default
/// configuration (blackbox ring armed, main trace off), so it gates the
/// push-time routing and ring eviction; `obs/tsdb_sampling_1k_rpcs`
/// gates the per-sync-point registry sweep, and `obs/link_telemetry_on`
/// gates the per-link/per-segment meter bumps on the bridged-packet
/// path (the flat hot path never registers them). `node/step_storm`'s 3%
/// tolerance doubles as the proof that the sampling-off hot path is
/// unchanged — that bench steps a bare `Node` with no world, so only
/// tracer-level cost can reach it.
pub const GATED: &[(&str, f64)] = &[
    ("world/20_null_rpcs_simulated", 25.0),
    ("obs/trace_off_overhead", 25.0),
    ("obs/flight_recorder_on", 25.0),
    ("obs/tsdb_sampling_1k_rpcs", 25.0),
    ("obs/link_telemetry_on", 3.0),
    ("node/step_storm", 3.0),
    ("world/1k_processes_round_robin", 3.0),
    ("world/1k_processes_parallel1", 3.0),
    ("world/100k_processes", 3.0),
];

/// One failure line per gated benchmark whose fresh *minimum* exceeds
/// the committed *median* past its tolerance (see the module docs for
/// the asymmetry). Benchmarks absent from the baseline (`new`) never
/// fail the gate — they gain teeth at the next re-baseline. A gated
/// benchmark absent from the *fresh* run, though, is a hard failure:
/// a renamed or deleted bench would otherwise pass the smoke diff
/// forever without measuring anything.
pub fn gate_failures(deltas: &[Delta]) -> Vec<String> {
    let mut out = Vec::new();
    for (name, tolerance) in GATED {
        let Some(d) = deltas.iter().find(|d| &d.name == name) else {
            out.push(format!(
                "{name}: gated benchmark missing from the fresh run \
                 (renamed or deleted? update GATED in bench::compare)"
            ));
            continue;
        };
        let Some(p) = d.gate_percent() else {
            continue;
        };
        if p > *tolerance {
            out.push(format!(
                "{name}: baseline median {} -> fresh min {} ({:+.1}% > +{tolerance:.0}% tolerance)",
                fmt_ns(d.baseline_ns.unwrap_or(0)),
                fmt_ns(d.fresh_min_ns),
                p,
            ));
        }
    }
    out
}

/// Renders one delta as a table row: name, baseline, fresh, delta.
pub fn row(d: &Delta) -> [String; 4] {
    [
        d.name.clone(),
        d.baseline_ns.map(fmt_ns).unwrap_or_else(|| "-".into()),
        fmt_ns(d.fresh_ns),
        d.describe(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::to_json;

    fn result(name: &str, median: u64) -> BenchResult {
        BenchResult {
            name: name.into(),
            samples: 3,
            iters_per_sample: 1,
            min_ns: median,
            median_ns: median,
            p95_ns: median,
        }
    }

    #[test]
    fn parse_round_trips_runner_json() {
        let json = to_json(&[result("a/b", 120), result("c/d", 99)]);
        let parsed = parse_baseline(&json);
        assert_eq!(
            parsed,
            vec![
                Baseline {
                    name: "a/b".into(),
                    median_ns: 120
                },
                Baseline {
                    name: "c/d".into(),
                    median_ns: 99
                },
            ]
        );
    }

    #[test]
    fn diff_matches_by_name_and_flags_new_benchmarks() {
        let base = vec![Baseline {
            name: "a/b".into(),
            median_ns: 200,
        }];
        let fresh = vec![result("a/b", 100), result("x/new", 7)];
        let deltas = diff(&base, &fresh);
        assert_eq!(deltas[0].percent(), Some(-50.0));
        assert_eq!(deltas[0].gate_percent(), Some(-50.0));
        assert_eq!(deltas[0].describe(), "-50.0%");
        assert_eq!(deltas[1].baseline_ns, None);
        assert_eq!(deltas[1].describe(), "new");
    }

    #[test]
    fn zero_baseline_reports_as_new() {
        let base = vec![Baseline {
            name: "a".into(),
            median_ns: 0,
        }];
        let deltas = diff(&base, &[result("a", 5)]);
        assert_eq!(deltas[0].percent(), None);
        assert_eq!(deltas[0].gate_percent(), None);
    }

    #[test]
    fn gate_fails_only_on_over_tolerance_gated_regressions() {
        let (gated, tol) = GATED[0];
        let base = vec![
            Baseline {
                name: gated.into(),
                median_ns: 100_000,
            },
            Baseline {
                name: "vm/fib15_to_completion".into(),
                median_ns: 100,
            },
        ];
        // Every gated bench must be present in the fresh run for the
        // gate to pass at all; only the first has a baseline here, so
        // only it can regress.
        let all_gated = |first_median: u64| -> Vec<BenchResult> {
            GATED
                .iter()
                .enumerate()
                .map(|(i, (name, _))| result(name, if i == 0 { first_median } else { 100 }))
                .collect()
        };

        // Ungated benchmark may regress arbitrarily; gated within
        // tolerance passes.
        let within = (100_000.0 * (1.0 + tol / 100.0 - 0.01)) as u64;
        let mut fresh = all_gated(within);
        fresh.push(result("vm/fib15_to_completion", 900));
        assert!(gate_failures(&diff(&base, &fresh)).is_empty());

        // Gated past tolerance fails, and the line names the benchmark.
        let beyond = (100_000.0 * (1.0 + tol / 100.0 + 0.05)) as u64;
        let failures = gate_failures(&diff(&base, &all_gated(beyond)));
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains(gated));
    }

    #[test]
    fn gate_fails_on_gated_benchmark_missing_from_fresh_run() {
        // A renamed or deleted gated bench must not silently pass the
        // smoke diff: every GATED name absent from the fresh results
        // produces its own failure line.
        let (kept, _) = GATED[0];
        let fresh: Vec<BenchResult> = vec![result(kept, 100)];
        let failures = gate_failures(&diff(&[], &fresh));
        assert_eq!(failures.len(), GATED.len() - 1, "{failures:?}");
        for ((name, _), line) in GATED[1..].iter().zip(&failures) {
            assert!(line.contains(name), "{line}");
            assert!(line.contains("missing from the fresh run"), "{line}");
        }
    }

    #[test]
    fn gate_ignores_benchmarks_missing_from_baseline() {
        let fresh: Vec<BenchResult> = GATED
            .iter()
            .map(|(name, _)| result(name, 1_000_000))
            .collect();
        assert!(gate_failures(&diff(&[], &fresh)).is_empty());
    }

    #[test]
    fn parse_skips_malformed_lines() {
        let parsed = parse_baseline("{\n  \"benchmarks\": [\n  ]\n}\nnot json at all");
        assert!(parsed.is_empty());
    }
}
