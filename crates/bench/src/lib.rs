//! Shared plumbing for the Pilgrim experiment harnesses.
//!
//! Each `benches/eN_*.rs` target reproduces one quantitative claim or
//! figure from the paper (the mapping lives in `DESIGN.md` and the results
//! in `EXPERIMENTS.md`). The targets are plain `main` functions
//! (`harness = false`), so `cargo bench` prints every paper-style table.

#![warn(missing_docs)]

pub mod compare;
pub mod runner;
pub mod suite;

use std::fmt::Display;

/// A printable experiment table.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    claim: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and the paper claim it checks.
    pub fn new(title: impl Into<String>, claim: impl Into<String>) -> Table {
        Table {
            title: title.into(),
            claim: claim.into(),
            ..Default::default()
        }
    }

    /// Sets the column headers.
    pub fn headers<S: Into<String>>(mut self, hs: impl IntoIterator<Item = S>) -> Table {
        self.headers = hs.into_iter().map(Into::into).collect();
        self
    }

    /// Adds one row.
    pub fn row<S: Display>(&mut self, cells: impl IntoIterator<Item = S>) {
        self.rows
            .push(cells.into_iter().map(|c| c.to_string()).collect());
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("\n=== {} ===", self.title);
        if !self.claim.is_empty() {
            println!("paper: {}", self.claim);
        }
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(0);
                }
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!(
                    "{:<w$}  ",
                    c,
                    w = widths.get(i).copied().unwrap_or(8)
                ));
            }
            println!("  {}", s.trim_end());
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
        println!("  {}", "-".repeat(total.min(110)));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Formats microseconds as a human-readable duration.
pub fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.3}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.3}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

/// A verdict column value.
pub fn verdict(ok: bool) -> &'static str {
    if ok {
        "OK"
    } else {
        "MISMATCH"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_without_panicking() {
        let mut t = Table::new("t", "c").headers(["a", "bb"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        t.print();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_us(10), "10us");
        assert_eq!(fmt_us(1500), "1.500ms");
        assert_eq!(fmt_us(2_500_000), "2.500s");
        assert_eq!(verdict(true), "OK");
        assert_eq!(verdict(false), "MISMATCH");
    }
}
