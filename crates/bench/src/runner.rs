//! A small wall-clock timing runner, in-repo.
//!
//! Replaces the former criterion dev-dependency for the micro-benchmarks:
//! each benchmark is auto-calibrated so one sample takes a few
//! milliseconds, warmed up, then sampled repeatedly; the per-iteration
//! minimum, median, and p95 across samples are reported. Results print as
//! the repo's usual paper-style tables and can be written to a JSON file
//! (`BENCH_micro.json`) so successive PRs leave a comparable trajectory.

use std::time::{Duration, Instant};

/// Per-iteration timing statistics for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name, e.g. `vm/fib15_to_completion`.
    pub name: String,
    /// Number of timed samples taken.
    pub samples: usize,
    /// Iterations of the benchmarked closure per sample.
    pub iters_per_sample: u64,
    /// Fastest observed per-iteration time, nanoseconds.
    pub min_ns: u64,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: u64,
    /// 95th-percentile per-iteration time, nanoseconds.
    pub p95_ns: u64,
}

impl BenchResult {
    /// `min / median / p95` formatted human-readably.
    pub fn summary(&self) -> String {
        format!(
            "{} / {} / {}",
            fmt_ns(self.min_ns),
            fmt_ns(self.median_ns),
            fmt_ns(self.p95_ns)
        )
    }
}

/// Formats nanoseconds as a human-readable duration.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Tuning knobs for [`run_with`]; [`run`] uses the defaults.
#[derive(Debug, Clone)]
pub struct Config {
    /// Timed samples to take.
    pub samples: usize,
    /// Warmup samples (run, discarded).
    pub warmup_samples: usize,
    /// Target wall-clock duration of one sample; iterations are
    /// calibrated to roughly hit this.
    pub target_sample: Duration,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            samples: 20,
            warmup_samples: 3,
            target_sample: Duration::from_millis(5),
        }
    }
}

/// Times one closure with the default [`Config`].
pub fn run(name: &str, f: impl FnMut()) -> BenchResult {
    run_with(name, &Config::default(), f)
}

/// Times one closure: calibrate, warm up, sample, summarise.
pub fn run_with(name: &str, cfg: &Config, mut f: impl FnMut()) -> BenchResult {
    // Calibrate: double the iteration count until one batch is ~1/4 of
    // the target, then scale up to the target.
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = t.elapsed();
        if elapsed >= cfg.target_sample / 4 || iters >= 1 << 30 {
            if !elapsed.is_zero() {
                let scale = cfg.target_sample.as_nanos() as f64 / elapsed.as_nanos() as f64;
                iters = ((iters as f64 * scale).round() as u64).max(1);
            }
            break;
        }
        iters *= 2;
    }

    for _ in 0..cfg.warmup_samples {
        for _ in 0..iters {
            f();
        }
    }

    let mut per_iter_ns: Vec<u64> = Vec::with_capacity(cfg.samples);
    for _ in 0..cfg.samples {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_iter_ns.push((t.elapsed().as_nanos() / u128::from(iters)) as u64);
    }
    per_iter_ns.sort_unstable();

    let pct = |p: f64| {
        let idx = ((per_iter_ns.len() - 1) as f64 * p).round() as usize;
        per_iter_ns[idx]
    };
    BenchResult {
        name: name.to_string(),
        samples: cfg.samples,
        iters_per_sample: iters,
        min_ns: per_iter_ns[0],
        median_ns: pct(0.5),
        p95_ns: pct(0.95),
    }
}

/// Logical cores visible to this process — recorded alongside baselines
/// so thread-scaling numbers (`world/1k_processes_parallel{N}`) carry the
/// machine context needed to interpret them.
pub fn logical_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Renders results as a JSON document (hand-written — no serde in the
/// hermetic workspace; names are plain ASCII benchmark ids). The
/// top-level `logical_cores` field records the machine the baseline was
/// taken on; the comparison gate parses per-benchmark lines only and
/// ignores it.
pub fn to_json(results: &[BenchResult]) -> String {
    let mut out = format!(
        "{{\n  \"logical_cores\": {},\n  \"benchmarks\": [\n",
        logical_cores()
    );
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"iters_per_sample\": {}, \
             \"min_ns\": {}, \"median_ns\": {}, \"p95_ns\": {}}}{}\n",
            r.name,
            r.samples,
            r.iters_per_sample,
            r.min_ns,
            r.median_ns,
            r.p95_ns,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes [`to_json`] output to `path`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_json(path: &std::path::Path, results: &[BenchResult]) -> std::io::Result<()> {
    std::fs::write(path, to_json(results))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_orders_statistics() {
        let mut x = 0u64;
        let r = run_with(
            "spin",
            &Config {
                samples: 5,
                warmup_samples: 1,
                target_sample: Duration::from_micros(200),
            },
            || {
                for i in 0..100 {
                    x = x.wrapping_add(i);
                }
                std::hint::black_box(x);
            },
        );
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.p95_ns);
        assert!(r.iters_per_sample >= 1);
        assert_eq!(r.samples, 5);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = BenchResult {
            name: "a/b".into(),
            samples: 20,
            iters_per_sample: 7,
            min_ns: 1,
            median_ns: 2,
            p95_ns: 3,
        };
        let j = to_json(&[r.clone(), r]);
        assert_eq!(j.matches("\"name\": \"a/b\"").count(), 2);
        assert!(j.trim_end().ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn formats_durations() {
        assert_eq!(fmt_ns(950), "950ns");
        assert_eq!(fmt_ns(1_500), "1.500us");
        assert_eq!(fmt_ns(2_000_000), "2.000ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000s");
    }
}
