//! Bench-smoke: run the micro suite quickly and diff against the
//! committed `BENCH_micro.json` baseline.
//!
//! `cargo run --release -p pilgrim-bench --bin compare`
//!
//! Uses a smoke configuration (1 warmup + 5 samples per benchmark) so the
//! whole run finishes in seconds; prints per-benchmark deltas. Most rows
//! are trend-read only, but the [`compare::GATED`] benchmarks (the
//! tracing-off hot path) fail the run — exit code 1 — when they regress
//! past their tolerance. Re-baselining stays the job of
//! `cargo bench -p pilgrim-bench --bench micro`.

use std::time::Duration;

use pilgrim_bench::runner::Config;
use pilgrim_bench::{compare, suite, Table};

fn main() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_micro.json");
    let baseline = match std::fs::read_to_string(&path) {
        Ok(json) => compare::parse_baseline(&json),
        Err(e) => {
            eprintln!("no baseline at {}: {e}", path.display());
            Vec::new()
        }
    };

    // Five samples, gate on the fastest: on shared runners each extra
    // sample tightens the minimum toward the true cost, and the heavy
    // scale benchmarks still keep the whole smoke run under a minute.
    let cfg = Config {
        samples: 5,
        warmup_samples: 1,
        target_sample: Duration::from_millis(2),
    };
    let fresh = suite::all(&cfg);

    let deltas = compare::diff(&baseline, &fresh);
    let mut table = Table::new(
        "bench-smoke — fresh medians vs committed BENCH_micro.json",
        "gated: tracing-off hot path; rest is trend read (re-baseline with \
         `cargo bench --bench micro`)",
    )
    .headers(["benchmark", "baseline", "fresh", "delta"]);
    for d in &deltas {
        table.row(compare::row(d));
    }
    table.print();

    let failures = compare::gate_failures(&deltas);
    if !failures.is_empty() {
        eprintln!("\nbench-smoke gate FAILED — tracing-off hot path regressed:");
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!(
            "if intentional, re-baseline with `cargo bench -p pilgrim-bench --bench micro` \
             and commit BENCH_micro.json"
        );
        std::process::exit(1);
    }
}
