//! Bench-smoke: run the micro suite quickly and diff against the
//! committed `BENCH_micro.json` baseline.
//!
//! `cargo run --release -p pilgrim-bench --bin compare`
//!
//! Uses a smoke configuration (1 warmup + 3 samples per benchmark) so the
//! whole run finishes in seconds; prints per-benchmark deltas with no
//! pass/fail thresholds. Re-baselining stays the job of
//! `cargo bench -p pilgrim-bench --bench micro`.

use std::time::Duration;

use pilgrim_bench::runner::Config;
use pilgrim_bench::{compare, suite, Table};

fn main() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_micro.json");
    let baseline = match std::fs::read_to_string(&path) {
        Ok(json) => compare::parse_baseline(&json),
        Err(e) => {
            eprintln!("no baseline at {}: {e}", path.display());
            Vec::new()
        }
    };

    let cfg = Config {
        samples: 3,
        warmup_samples: 1,
        target_sample: Duration::from_millis(2),
    };
    let fresh = suite::all(&cfg);

    let mut table = Table::new(
        "bench-smoke — fresh medians vs committed BENCH_micro.json",
        "trend read only; no thresholds (re-baseline with `cargo bench --bench micro`)",
    )
    .headers(["benchmark", "baseline", "fresh", "delta"]);
    for d in compare::diff(&baseline, &fresh) {
        table.row(compare::row(&d));
    }
    table.print();
}
