//! The M1 micro-benchmark suite, as a library.
//!
//! Each benchmark measures the *harness's* wall-clock performance (how
//! fast the reproduction simulates), not any paper number. The suite is a
//! library so two binaries can share it: `benches/micro.rs` runs the full
//! sampled configuration and re-baselines `BENCH_micro.json`, while
//! `src/bin/compare.rs` runs a quick smoke configuration and diffs the
//! fresh numbers against the committed baseline.

use pilgrim::{NetworkConfig, SimTime, Topology, Value, World};
use pilgrim_cclu::{compile, ExecEnv, Heap, StepOutcome, VmProcess};
use pilgrim_mayflower::{Node, NodeConfig, RunState, SpawnOpts};
use pilgrim_rpc::{marshal, unmarshal};
use pilgrim_sim::{EventQueue, SimDuration, Tracer};

use crate::runner::{self, BenchResult, Config};

const FIB: &str = "\
fib = proc (n: int) returns (int)
 if n < 2 then
  return (n)
 end
 return (fib(n - 1) + fib(n - 2))
end
main = proc () returns (int)
 return (fib(15))
end";

/// Compiler throughput on the fib program.
pub fn compile_fib(cfg: &Config) -> BenchResult {
    runner::run_with("compiler/compile_fib", cfg, || {
        std::hint::black_box(compile(std::hint::black_box(FIB)).unwrap());
    })
}

/// A no-op syscall provider for raw VM stepping.
struct NullSys;
impl pilgrim_cclu::Syscalls for NullSys {
    fn now_ms(&mut self) -> i64 {
        0
    }
    fn pid(&mut self) -> i64 {
        1
    }
    fn node_id(&mut self) -> i64 {
        0
    }
    fn random(&mut self, bound: i64) -> i64 {
        bound - 1
    }
    fn print(&mut self, _text: &str) {}
    fn sem_create(&mut self, _count: i64) -> u32 {
        0
    }
    fn sem_wait(&mut self, _s: u32, _t: i64) -> pilgrim_cclu::SysReply {
        pilgrim_cclu::SysReply::Val(vec![Value::Bool(true)])
    }
    fn sem_signal(&mut self, _s: u32) {}
    fn mutex_create(&mut self) -> u32 {
        0
    }
    fn mutex_lock(&mut self, _m: u32) -> pilgrim_cclu::SysReply {
        pilgrim_cclu::SysReply::Val(vec![])
    }
    fn mutex_unlock(&mut self, _m: u32) {}
    fn fork(&mut self, _p: pilgrim_cclu::ProcId, _a: Vec<Value>) -> i64 {
        2
    }
    fn sleep(&mut self, _ms: i64) -> pilgrim_cclu::SysReply {
        pilgrim_cclu::SysReply::Val(vec![])
    }
    fn rpc(&mut self, _r: pilgrim_cclu::RpcRequest) -> pilgrim_cclu::SysReply {
        unreachable!("no rpc in fib")
    }
}

/// Raw VM dispatch: fib(15) to completion (≈21.7k instructions).
pub fn vm_fib15(cfg: &Config) -> BenchResult {
    let program = compile(FIB).unwrap();
    let entry = program.proc_by_name("main").unwrap();
    runner::run_with("vm/fib15_to_completion", cfg, || {
        let mut heap = Heap::new();
        let mut globals: Vec<Value> = vec![];
        let mut sys = NullSys;
        let mut p = VmProcess::spawn(entry, vec![]);
        loop {
            let mut env = ExecEnv {
                heap: &mut heap,
                program: &program,
                globals: &mut globals,
                sys: &mut sys,
            };
            match pilgrim_cclu::step(&mut p, &mut env) {
                StepOutcome::Exited { .. } => break,
                StepOutcome::Faulted { fault, .. } => panic!("{fault}"),
                _ => {}
            }
        }
        std::hint::black_box(&p.exit_values);
    })
}

/// Marshal + unmarshal of a record holding a 64-element array.
pub fn marshal_record(cfg: &Config) -> BenchResult {
    let mut heap = Heap::new();
    let arr = heap.alloc(pilgrim_cclu::HeapObject::Array(
        (0..64).map(Value::Int).collect(),
    ));
    let rec = heap.alloc(pilgrim_cclu::HeapObject::Record {
        type_name: "blob".into(),
        fields: vec![
            Value::Str("payload".into()),
            Value::Ref(arr),
            Value::Bool(true),
        ],
    });
    let v = Value::Ref(rec);
    runner::run_with("rpc/marshal_unmarshal_record", cfg, move || {
        let w = marshal(&heap, std::hint::black_box(&v)).unwrap();
        let mut dst = Heap::new();
        std::hint::black_box(unmarshal(&mut dst, &w));
    })
}

/// Event queue schedule + pop of 1k events, no cancellations.
pub fn event_queue_1k(cfg: &Config) -> BenchResult {
    runner::run_with("sim/event_queue_1k_schedule_pop", cfg, || {
        let mut q = EventQueue::new();
        for i in 0..1_000u64 {
            q.schedule(SimTime::from_micros((i * 7) % 997), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        std::hint::black_box(sum);
    })
}

/// Event queue under heavy cancellation: 2k events scheduled, every other
/// one cancelled before draining — exercises the lazy-skip path and the
/// single-map id bookkeeping.
pub fn event_queue_cancel_heavy(cfg: &Config) -> BenchResult {
    runner::run_with("sim/event_queue_cancel_heavy", cfg, || {
        let mut q = EventQueue::new();
        let mut ids = Vec::with_capacity(2_048);
        for i in 0..2_048u64 {
            ids.push(q.schedule(SimTime::from_micros((i * 13) % 1_999), i));
        }
        for id in ids.iter().step_by(2) {
            std::hint::black_box(q.cancel(*id));
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        std::hint::black_box(sum);
    })
}

/// One process executing ~100k instructions on a bare node — the
/// scheduler's `step_process` hot path with no I/O, timers, or peers.
pub fn node_step_storm(cfg: &Config) -> BenchResult {
    const STORM: &str = "\
storm = proc (n: int) returns (int)
 acc: int := 0
 for i: int := 1 to n do
  acc := acc + i
 end
 return (acc)
end";
    let program = compile(STORM).unwrap();
    runner::run_with("node/step_storm", cfg, move || {
        let mut node = Node::new(0, program.clone(), NodeConfig::default(), Tracer::new());
        let pid = node
            .spawn("storm", vec![Value::Int(12_000)], SpawnOpts::default())
            .unwrap();
        while node.process(pid).map(|p| &p.state) != Some(&RunState::Exited) {
            let clock = node.clock();
            std::hint::black_box(node.advance_to(clock + SimDuration::from_millis(100)));
        }
        std::hint::black_box(node.exit_values(pid));
    })
}

/// A thousand processes interleaving compute and 1ms sleeps on one node —
/// spawn churn, run-queue rotation, and batched timer expiry at scale.
pub fn world_1k_processes(cfg: &Config) -> BenchResult {
    const PROGRAM: &str = "\
worker = proc (k: int) returns (int)
 t: int := 0
 for i: int := 1 to k do
  t := t + i
  sleep(1)
 end
 return (t)
end
main = proc (n: int)
 for i: int := 1 to n do
  fork worker(5)
 end
end";
    runner::run_with("world/1k_processes_round_robin", cfg, || {
        let mut w = World::builder()
            .nodes(1)
            .program(PROGRAM)
            .debugger(false)
            .build()
            .unwrap();
        w.spawn(0, "main", vec![Value::Int(1_000)]);
        w.run_until_idle(SimTime::from_secs(60));
        std::hint::black_box(w.now());
    })
}

/// A thousand processes spread over eight nodes (125 workers each), all
/// compute-bound, so every lockstep window is full of disjoint per-node
/// VM stepping for the pool to hand out. (Per-iteration sleeps would
/// stagger wakeups and shatter the run into near-empty windows where the
/// barrier dominates — that serial fragility is what the round-robin
/// variant measures.) `threads == 1` is the serial baseline of the same
/// topology; the higher counts measure real speedup, since each window's
/// ~1ms of per-node instruction budget runs inside `Node::advance_to` on
/// the worker threads, leaving only the merge at the barrier.
pub fn world_1k_processes_parallel(cfg: &Config, threads: usize) -> BenchResult {
    const PROGRAM: &str = "\
worker = proc (k: int) returns (int)
 t: int := 0
 for i: int := 1 to k do
  t := t + i
 end
 return (t)
end
main = proc (n: int)
 for i: int := 1 to n do
  fork worker(40)
 end
end";
    let name = format!("world/1k_processes_parallel{threads}");
    runner::run_with(&name, cfg, move || {
        let mut w = World::builder()
            .nodes(8)
            .program(PROGRAM)
            .debugger(false)
            .step_threads(threads)
            .build()
            .unwrap();
        for node in 0..8 {
            w.spawn(node, "main", vec![Value::Int(125)]);
        }
        w.run_until_idle(SimTime::from_secs(60));
        std::hint::black_box(w.now());
    })
}

/// A hundred thousand processes across 100 nodes, each worker sleeping a
/// node-staggered duration before exiting — at any instant almost every
/// node is quiescent, which is exactly the regime the activity-index
/// pump targets: `next` and the step set come from the index in
/// O(active), not from scanning 100 nodes per window.
pub fn world_100k_processes(cfg: &Config) -> BenchResult {
    const PROGRAM: &str = "\
worker = proc (k: int) returns (int)
 sleep(k)
 return (k)
end
main = proc (n: int)
 d: int := 5 + my_node() * 3
 for i: int := 1 to n do
  fork worker(d)
 end
end";
    runner::run_with("world/100k_processes", cfg, || {
        let mut w = World::builder()
            .nodes(100)
            .program(PROGRAM)
            .debugger(false)
            .build()
            .unwrap();
        for node in 0..100 {
            w.spawn(node, "main", vec![Value::Int(1_000)]);
        }
        w.run_until_idle(SimTime::from_secs(60));
        std::hint::black_box(w.now());
    })
}

/// One million process lifecycles: 100 nodes each forking 10k empty
/// workers. Dominated by spawn churn — process-record construction
/// (interned `Arc<str>` names, no per-process program clone), run-queue
/// rotation, and exit reaping — the footprint-sensitive path that has to
/// stay cheap for the ROADMAP's 1M-process worlds.
pub fn world_1m_processes_spawn(cfg: &Config) -> BenchResult {
    const PROGRAM: &str = "\
worker = proc ()
end
main = proc (n: int)
 for i: int := 1 to n do
  fork worker()
 end
end";
    runner::run_with("world/1m_processes_spawn", cfg, || {
        let mut w = World::builder()
            .nodes(100)
            .program(PROGRAM)
            .debugger(false)
            .build()
            .unwrap();
        for node in 0..100 {
            w.spawn(node, "main", vec![Value::Int(10_000)]);
        }
        w.run_until_idle(SimTime::from_secs(600));
        std::hint::black_box(w.now());
    })
}

/// Null-RPC workload shared by the world/ and obs/ benchmarks: `main`
/// issues `n` sequential empty calls from node 0 to node 1.
const NULL_RPC_PROGRAM: &str = "\
ping = proc ()
end
main = proc (n: int)
 for i: int := 1 to n do
  call ping() at 1
 end
end";

fn null_rpc_world() -> World {
    World::builder()
        .nodes(2)
        .program(NULL_RPC_PROGRAM)
        .debugger(false)
        .build()
        .unwrap()
}

/// A full null-RPC round trip through the whole world, 20 times.
pub fn world_20_rpcs(cfg: &Config) -> BenchResult {
    runner::run_with("world/20_null_rpcs_simulated", cfg, || {
        let mut w = null_rpc_world();
        w.spawn(0, "main", vec![Value::Int(20)]);
        w.run_until_idle(SimTime::from_secs(60));
        assert_eq!(w.endpoint(0).stats().completed, 20);
        std::hint::black_box(w.now());
    })
}

/// The 20-RPC workload with every trace category disabled — including
/// the flight recorder's, so this measures the pure switched-off path:
/// a single atomic load-and-mask per potential event. It should track
/// `world/20_null_rpcs_simulated` (which runs with tracing on) from
/// below. `obs/flight_recorder_on` measures the always-on default.
pub fn trace_off_overhead(cfg: &Config) -> BenchResult {
    runner::run_with("obs/trace_off_overhead", cfg, || {
        let mut w = null_rpc_world();
        w.tracer().set_filter(&[]);
        w.tracer().set_blackbox_filter(&[]);
        w.spawn(0, "main", vec![Value::Int(20)]);
        w.run_until_idle(SimTime::from_secs(60));
        assert_eq!(w.endpoint(0).stats().completed, 20);
        std::hint::black_box(w.now());
    })
}

/// A thousand null RPCs with the main trace off but the flight recorder
/// on its default mask: what the always-on ring costs over the pure
/// disabled path — push-time routing plus the bounded-ring eviction.
pub fn flight_recorder_on(cfg: &Config) -> BenchResult {
    runner::run_with("obs/flight_recorder_on", cfg, || {
        let mut w = null_rpc_world();
        w.tracer().set_filter(&[]);
        w.spawn(0, "main", vec![Value::Int(1_000)]);
        w.run_until_idle(SimTime::from_secs(600));
        assert_eq!(w.endpoint(0).stats().completed, 1_000);
        assert!(w.tracer().blackbox_len() > 0);
        std::hint::black_box(w.now());
    })
}

/// A thousand null RPCs with the full-resolution time-series store armed:
/// the per-sync-point sampling sweep over the metrics registry plus the
/// ring eviction, amortized over a real RPC workload.
pub fn tsdb_sampling_1k_rpcs(cfg: &Config) -> BenchResult {
    runner::run_with("obs/tsdb_sampling_1k_rpcs", cfg, || {
        let mut w = World::builder()
            .nodes(2)
            .program(NULL_RPC_PROGRAM)
            .debugger(false)
            .tsdb(true)
            .build()
            .unwrap();
        w.spawn(0, "main", vec![Value::Int(1_000)]);
        w.run_until_idle(SimTime::from_secs(600));
        assert_eq!(w.endpoint(0).stats().completed, 1_000);
        std::hint::black_box(w.tsdb_summary().len());
    })
}

/// A thousand null RPCs across a bridged star's hub link. Multi-segment
/// worlds register per-link and per-segment meters, so every bridge
/// packet bumps bytes/busy/queue counters at enqueue and delivery —
/// this measures that telemetry riding a real cross-segment workload.
/// The flat `world/20_null_rpcs_simulated` path is untouched by
/// construction (flat worlds never register the meters).
pub fn link_telemetry_on(cfg: &Config) -> BenchResult {
    const PROGRAM: &str = "\
ping = proc ()
end
main = proc (n: int)
 for i: int := 1 to n do
  call ping() at 2
 end
end";
    runner::run_with("obs/link_telemetry_on", cfg, || {
        let mut w = World::builder()
            .nodes(4)
            .program(PROGRAM)
            .network(NetworkConfig {
                topology: Topology::Star { arms: 1 },
                ..Default::default()
            })
            .debugger(false)
            .build()
            .unwrap();
        w.spawn(0, "main", vec![Value::Int(1_000)]);
        w.run_until_idle(SimTime::from_secs(600));
        assert_eq!(w.endpoint(0).stats().completed, 1_000);
        assert!(w.metrics().counter_value("net.link0-1.bytes").unwrap_or(0) > 0);
        std::hint::black_box(w.now());
    })
}

/// A thousand null RPCs with every trace category enabled, finishing
/// with a JSONL export of the whole trace — the fully-instrumented
/// worst case (event construction, span bookkeeping, metrics, dump).
pub fn trace_on_1k_rpcs(cfg: &Config) -> BenchResult {
    runner::run_with("obs/trace_on_1k_rpcs", cfg, || {
        let mut w = null_rpc_world();
        w.spawn(0, "main", vec![Value::Int(1_000)]);
        w.run_until_idle(SimTime::from_secs(600));
        assert_eq!(w.endpoint(0).stats().completed, 1_000);
        std::hint::black_box(w.trace_jsonl().len());
    })
}

/// A thousand null RPCs with the VM profiler on: per-step call-stack
/// attribution, time ledgers, and the folded-stack fold at the end — the
/// profiler's fully-instrumented worst case.
pub fn profile_on_1k_rpcs(cfg: &Config) -> BenchResult {
    runner::run_with("obs/profile_on_1k_rpcs", cfg, || {
        let mut w = World::builder()
            .nodes(2)
            .program(NULL_RPC_PROGRAM)
            .node_config(pilgrim_mayflower::NodeConfig {
                profile_vm: true,
                ..Default::default()
            })
            .debugger(false)
            .build()
            .unwrap();
        w.spawn(0, "main", vec![Value::Int(1_000)]);
        w.run_until_idle(SimTime::from_secs(600));
        assert_eq!(w.endpoint(0).stats().completed, 1_000);
        std::hint::black_box(w.folded_stacks().len());
    })
}

/// The 20-RPC workload with a never-tripping metric watchpoint armed:
/// what the per-sync-point watch evaluation costs while nothing fires.
pub fn watchpoint_armed(cfg: &Config) -> BenchResult {
    runner::run_with("obs/watchpoint_armed", cfg, || {
        let mut w = null_rpc_world();
        w.arm_watch("rpc.failed > 1000000").unwrap();
        w.spawn(0, "main", vec![Value::Int(20)]);
        w.run_until_idle(SimTime::from_secs(60));
        assert_eq!(w.endpoint(0).stats().completed, 20);
        assert!(w.watch_trips().is_empty());
        std::hint::black_box(w.now());
    })
}

/// Runs every benchmark in the suite under `cfg`, in a stable order.
pub fn all(cfg: &Config) -> Vec<BenchResult> {
    vec![
        compile_fib(cfg),
        vm_fib15(cfg),
        marshal_record(cfg),
        event_queue_1k(cfg),
        event_queue_cancel_heavy(cfg),
        node_step_storm(cfg),
        world_1k_processes(cfg),
        world_1k_processes_parallel(cfg, 1),
        world_1k_processes_parallel(cfg, 2),
        world_1k_processes_parallel(cfg, 4),
        world_1k_processes_parallel(cfg, 8),
        world_100k_processes(cfg),
        world_1m_processes_spawn(cfg),
        world_20_rpcs(cfg),
        trace_off_overhead(cfg),
        flight_recorder_on(cfg),
        tsdb_sampling_1k_rpcs(cfg),
        link_telemetry_on(cfg),
        trace_on_1k_rpcs(cfg),
        profile_on_1k_rpcs(cfg),
        watchpoint_armed(cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// One ultra-short pass over every benchmark proves the suite bodies
    /// are executable (the assertions inside each body do the checking).
    #[test]
    fn suite_executes_end_to_end() {
        let cfg = Config {
            samples: 1,
            warmup_samples: 0,
            target_sample: Duration::from_micros(1),
        };
        let results = all(&cfg);
        assert_eq!(results.len(), 21);
        let names: Vec<&str> = results.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"node/step_storm"));
        assert!(names.contains(&"world/1k_processes_round_robin"));
        assert!(names.contains(&"world/100k_processes"));
        assert!(names.contains(&"world/1m_processes_spawn"));
        assert!(names.contains(&"world/1k_processes_parallel1"));
        assert!(names.contains(&"world/1k_processes_parallel4"));
        assert!(names.contains(&"sim/event_queue_cancel_heavy"));
        assert!(names.contains(&"obs/trace_off_overhead"));
        assert!(names.contains(&"obs/flight_recorder_on"));
        assert!(names.contains(&"obs/tsdb_sampling_1k_rpcs"));
        assert!(names.contains(&"obs/link_telemetry_on"));
        assert!(names.contains(&"obs/trace_on_1k_rpcs"));
        assert!(names.contains(&"obs/profile_on_1k_rpcs"));
        assert!(names.contains(&"obs/watchpoint_armed"));
    }
}
