//! Bridged multi-segment topologies.
//!
//! The paper's network is one flat Cambridge Ring. Real installations
//! bridged several rings together (and modern traffic models are
//! segment-routed: NIC → bridge → backbone), so the simulator supports
//! carving the station space into *segments* joined by *bridge links*:
//!
//! * [`Topology::Flat`] — the classic single segment, byte-identical to
//!   the pre-topology behaviour;
//! * [`Topology::RingOfRings`] — segments joined in a cycle, packets
//!   take the shorter arc of bridge hops;
//! * [`Topology::Star`] — leaf segments joined through a hub (segment
//!   0), at most two bridge hops between any pair of stations.
//!
//! Stations are assigned to segments in contiguous blocks, so "stations
//! 0–24 are ring 0" reads off the station index. Every bridge hop is
//! store-and-forward through a [`LinkModel`]: serialization at the
//! link's bandwidth, fixed forwarding latency, seeded uniform jitter,
//! and an independent per-hop loss probability. Bridge links can also be
//! partitioned — by a declarative, recipe-captured schedule of
//! [`PartitionWindow`]s or by the driver at run time — during which every
//! packet whose path crosses the cut is lost silently (a sender's ring
//! hardware can only see its own segment, so no NACK crosses a bridge).

use pilgrim_sim::{Json, SimDuration, SimTime};

/// How the station space is carved into bridged segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// One flat segment; no bridges, identical to the paper's ring.
    #[default]
    Flat,
    /// `segments` rings joined in a cycle by bridge links; packets cross
    /// the shorter arc.
    RingOfRings {
        /// Number of segments in the cycle (≥ 1).
        segments: u32,
    },
    /// `arms` leaf segments each bridged to a hub (segment 0).
    Star {
        /// Number of leaf segments (≥ 1); total segments = `arms + 1`.
        arms: u32,
    },
}

impl Topology {
    /// Total number of segments.
    pub fn segments(self) -> u32 {
        match self {
            Topology::Flat => 1,
            Topology::RingOfRings { segments } => segments.max(1),
            Topology::Star { arms } => arms.max(1) + 1,
        }
    }

    /// The segment `station` belongs to, out of `stations` total.
    /// Contiguous blocks: with S segments the first `ceil(stations/S)`
    /// stations form segment 0, and so on.
    pub fn segment_of(self, station: u32, stations: u32) -> u32 {
        let segs = self.segments();
        if segs <= 1 || stations == 0 {
            return 0;
        }
        let block = stations.div_ceil(segs);
        (station / block).min(segs - 1)
    }

    /// The ordered bridge links a packet crosses from segment `a` to
    /// segment `b`, as normalized `(lo, hi)` segment pairs. Empty when
    /// `a == b`.
    pub fn path_links(self, a: u32, b: u32) -> Vec<(u32, u32)> {
        if a == b {
            return Vec::new();
        }
        match self {
            Topology::Flat => Vec::new(),
            Topology::Star { .. } => {
                let mut links = Vec::new();
                if a != 0 {
                    links.push(link_key(a, 0));
                }
                if b != 0 {
                    links.push(link_key(0, b));
                }
                links
            }
            Topology::RingOfRings { .. } => {
                let s = self.segments();
                let fwd = (b + s - a) % s; // hops going a, a+1, …
                let back = (a + s - b) % s; // hops going a, a-1, …
                let mut links = Vec::new();
                let mut cur = a;
                if fwd <= back {
                    for _ in 0..fwd {
                        let next = (cur + 1) % s;
                        links.push(link_key(cur, next));
                        cur = next;
                    }
                } else {
                    for _ in 0..back {
                        let next = (cur + s - 1) % s;
                        links.push(link_key(cur, next));
                        cur = next;
                    }
                }
                links
            }
        }
    }

    /// Every bridge link in the topology, as normalized `(lo, hi)`
    /// segment pairs in ascending order. Flat topologies have none;
    /// per-link telemetry registers one meter set per entry, so the
    /// order here fixes the metric registration order.
    pub fn all_links(self) -> Vec<(u32, u32)> {
        match self {
            Topology::Flat => Vec::new(),
            Topology::Star { .. } => {
                let s = self.segments();
                (1..s).map(|arm| link_key(0, arm)).collect()
            }
            Topology::RingOfRings { .. } => {
                let s = self.segments();
                if s < 2 {
                    return Vec::new();
                }
                let mut links: Vec<(u32, u32)> = (0..s).map(|i| link_key(i, (i + 1) % s)).collect();
                links.sort_unstable();
                links.dedup();
                links
            }
        }
    }

    /// Stable wire name, used by the replay recipe format.
    pub fn to_json(self) -> Json {
        match self {
            Topology::Flat => Json::obj(vec![("kind", Json::Str("flat".into()))]),
            Topology::RingOfRings { segments } => Json::obj(vec![
                ("kind", Json::Str("ring-of-rings".into())),
                ("segments", Json::Int(segments as i128)),
            ]),
            Topology::Star { arms } => Json::obj(vec![
                ("kind", Json::Str("star".into())),
                ("arms", Json::Int(arms as i128)),
            ]),
        }
    }

    /// The inverse of [`to_json`](Topology::to_json).
    ///
    /// # Errors
    ///
    /// Unknown kinds and missing fields.
    pub fn from_json(v: &Json) -> Result<Topology, String> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("topology: missing `kind`")?;
        Ok(match kind {
            "flat" => Topology::Flat,
            "ring-of-rings" => Topology::RingOfRings {
                segments: v
                    .get("segments")
                    .and_then(Json::as_u64)
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or("topology: missing `segments`")?,
            },
            "star" => Topology::Star {
                arms: v
                    .get("arms")
                    .and_then(Json::as_u64)
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or("topology: missing `arms`")?,
            },
            other => return Err(format!("topology: unknown kind `{other}`")),
        })
    }
}

/// Normalized bridge-link key between two segments.
pub fn link_key(a: u32, b: u32) -> (u32, u32) {
    (a.min(b), a.max(b))
}

/// Per-bridge-hop behaviour: store-and-forward serialization, forwarding
/// latency, seeded jitter, and independent loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Fixed forwarding latency per hop.
    pub latency: SimDuration,
    /// Maximum extra per-hop delay; each hop draws uniformly from
    /// `[0, jitter]` out of the network's seeded RNG.
    pub jitter: SimDuration,
    /// Serialization cost per payload byte — the link's bandwidth. The
    /// link is busy for `bytes × per_byte`, so packets queue behind each
    /// other on a saturated bridge.
    pub per_byte: SimDuration,
    /// Probability a packet is lost crossing the hop (always silent:
    /// NACKs do not cross bridges).
    pub p_loss: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            latency: SimDuration::from_micros(500),
            jitter: SimDuration::ZERO,
            per_byte: SimDuration::from_micros(1),
            p_loss: 0.0,
        }
    }
}

impl LinkModel {
    /// The model as a JSON object for the replay recipe.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("latency_us", Json::Int(self.latency.as_micros() as i128)),
            ("jitter_us", Json::Int(self.jitter.as_micros() as i128)),
            ("per_byte_us", Json::Int(self.per_byte.as_micros() as i128)),
            ("p_loss", Json::Float(self.p_loss)),
        ])
    }

    /// The inverse of [`to_json`](LinkModel::to_json).
    ///
    /// # Errors
    ///
    /// Missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<LinkModel, String> {
        let us = |field: &str| -> Result<SimDuration, String> {
            v.get(field)
                .and_then(Json::as_u64)
                .map(SimDuration::from_micros)
                .ok_or_else(|| format!("link model: missing `{field}`"))
        };
        Ok(LinkModel {
            latency: us("latency_us")?,
            jitter: us("jitter_us")?,
            per_byte: us("per_byte_us")?,
            p_loss: v
                .get("p_loss")
                .and_then(Json::as_f64)
                .ok_or("link model: missing `p_loss`")?,
        })
    }
}

/// One scheduled partition: the bridge link between segments `a` and `b`
/// is down during `[from, to)`. Part of [`super::NetworkConfig`], so the
/// schedule rides the replay recipe and loaded runs reproduce their
/// partitions without any journalled stimulus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Cut begins (inclusive).
    pub from: SimTime,
    /// Cut heals (exclusive).
    pub to: SimTime,
    /// One end of the bridge link.
    pub a: u32,
    /// The other end.
    pub b: u32,
}

impl PartitionWindow {
    /// Does this window cut the link `(a, b)` at time `at`?
    pub fn cuts(&self, link: (u32, u32), at: SimTime) -> bool {
        link_key(self.a, self.b) == link && self.from <= at && at < self.to
    }

    /// The window as a JSON object for the replay recipe.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("from_us", Json::Int(self.from.as_micros() as i128)),
            ("to_us", Json::Int(self.to.as_micros() as i128)),
            ("a", Json::Int(self.a as i128)),
            ("b", Json::Int(self.b as i128)),
        ])
    }

    /// The inverse of [`to_json`](PartitionWindow::to_json).
    ///
    /// # Errors
    ///
    /// Missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<PartitionWindow, String> {
        let u = |field: &str| -> Result<u64, String> {
            v.get(field)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("partition window: missing `{field}`"))
        };
        Ok(PartitionWindow {
            from: SimTime::from_micros(u("from_us")?),
            to: SimTime::from_micros(u("to_us")?),
            a: u32::try_from(u("a")?).map_err(|_| "partition window: `a` out of range")?,
            b: u32::try_from(u("b")?).map_err(|_| "partition window: `b` out of range")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_one_segment() {
        let t = Topology::Flat;
        assert_eq!(t.segments(), 1);
        assert_eq!(t.segment_of(7, 100), 0);
        assert!(t.path_links(0, 0).is_empty());
    }

    #[test]
    fn contiguous_blocks_cover_all_stations() {
        let t = Topology::RingOfRings { segments: 4 };
        // 10 stations over 4 segments: blocks of 3 — 3/3/3/1.
        let segs: Vec<u32> = (0..10).map(|i| t.segment_of(i, 10)).collect();
        assert_eq!(segs, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
        // Exactly-divisible case.
        let t8 = Topology::RingOfRings { segments: 2 };
        let segs: Vec<u32> = (0..8).map(|i| t8.segment_of(i, 8)).collect();
        assert_eq!(segs, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn star_routes_through_hub() {
        let t = Topology::Star { arms: 3 };
        assert_eq!(t.segments(), 4);
        assert_eq!(t.path_links(1, 2), vec![(0, 1), (0, 2)]);
        assert_eq!(t.path_links(0, 3), vec![(0, 3)]);
        assert_eq!(t.path_links(3, 0), vec![(0, 3)]);
    }

    #[test]
    fn ring_of_rings_takes_shorter_arc() {
        let t = Topology::RingOfRings { segments: 5 };
        // 0 → 2: forward (2 hops) beats backward (3 hops).
        assert_eq!(t.path_links(0, 2), vec![(0, 1), (1, 2)]);
        // 0 → 4: backward, one hop.
        assert_eq!(t.path_links(0, 4), vec![(0, 4)]);
        // Even cycle tie break goes forward.
        let t4 = Topology::RingOfRings { segments: 4 };
        assert_eq!(t4.path_links(0, 2), vec![(0, 1), (1, 2)]);
        assert_eq!(t4.path_links(2, 0), vec![(2, 3), (0, 3)]);
    }

    #[test]
    fn partition_window_cuts_half_open() {
        let w = PartitionWindow {
            from: SimTime::from_secs(30),
            to: SimTime::from_secs(45),
            a: 1,
            b: 0,
        };
        assert!(!w.cuts((0, 1), SimTime::from_micros(29_999_999)));
        assert!(w.cuts((0, 1), SimTime::from_secs(30)));
        assert!(w.cuts((0, 1), SimTime::from_micros(44_999_999)));
        assert!(!w.cuts((0, 1), SimTime::from_secs(45)));
        assert!(!w.cuts((0, 2), SimTime::from_secs(31)));
    }

    #[test]
    fn all_links_enumerates_every_bridge() {
        assert!(Topology::Flat.all_links().is_empty());
        assert!(Topology::RingOfRings { segments: 1 }.all_links().is_empty());
        // A two-segment cycle has exactly one bridge, not two.
        assert_eq!(
            Topology::RingOfRings { segments: 2 }.all_links(),
            vec![(0, 1)]
        );
        assert_eq!(
            Topology::RingOfRings { segments: 4 }.all_links(),
            vec![(0, 1), (0, 3), (1, 2), (2, 3)]
        );
        assert_eq!(
            Topology::Star { arms: 3 }.all_links(),
            vec![(0, 1), (0, 2), (0, 3)]
        );
        // Every path link appears in the enumeration.
        for t in [
            Topology::RingOfRings { segments: 5 },
            Topology::Star { arms: 4 },
        ] {
            let all = t.all_links();
            for a in 0..t.segments() {
                for b in 0..t.segments() {
                    for link in t.path_links(a, b) {
                        assert!(all.contains(&link), "{t:?}: {link:?} missing");
                    }
                }
            }
        }
    }

    #[test]
    fn topology_json_round_trips() {
        for t in [
            Topology::Flat,
            Topology::RingOfRings { segments: 6 },
            Topology::Star { arms: 4 },
        ] {
            let mut rendered = String::new();
            t.to_json().write(&mut rendered);
            let back = Topology::from_json(&Json::parse(&rendered).unwrap()).unwrap();
            assert_eq!(back, t);
        }
        assert!(Topology::from_json(&Json::parse("{\"kind\": \"mesh\"}").unwrap()).is_err());
    }
}
