//! A Cambridge Ring network simulator.
//!
//! Pilgrim's nodes communicate over the Cambridge Ring (paper §2, §5.2).
//! The properties of that network that the paper's analysis depends on are
//! modelled directly:
//!
//! * **Basic blocks** take about **3.5 ms** to reach their destination —
//!   the smallest generally available protocol unit (§5.2).
//! * **No data-link broadcast**: halting N nodes requires N serial
//!   transmissions, each occupying the sender's transmitter (§5.2).
//! * **Hardware negative acknowledgement**: "the transmitting hardware is
//!   informed if the packet just sent was not received by the destination
//!   network interface" (§5.2). Senders therefore *know* about
//!   interface-level loss and can retransmit; this is what makes the halt
//!   broadcast reliable.
//! * Packets can still be lost *silently* above the interface (buffer
//!   overruns and the like) — this is how `maybe`-protocol RPCs lose call
//!   or reply packets (§4.1).
//!
//! An Ethernet-style [`Medium::Ethernet`] variant provides the broadcast
//! facility the paper contrasts against ("something approaching this can be
//! achieved on a single broadcast network such as Ethernet"), including its
//! lack of reliable broadcast: a broadcast can be lost per-receiver with no
//! indication to the sender.
//!
//! # Examples
//!
//! ```
//! use pilgrim_ring::{Network, NetworkConfig, NodeId, TxStatus};
//! use pilgrim_sim::SimTime;
//!
//! let mut net: Network<&str> = Network::new(NetworkConfig::default(), 3);
//! let status = net.send(SimTime::ZERO, NodeId(0), NodeId(2), "hello", 32);
//! assert!(matches!(status, TxStatus::Queued { .. }));
//! let (deliveries, _) = net.poll(SimTime::from_millis(10));
//! assert_eq!(deliveries.len(), 1);
//! assert_eq!(deliveries[0].dst, NodeId(2));
//! ```

#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::fmt;

use pilgrim_sim::{
    Counter, DetRng, EventKind, EventQueue, Gauge, Json, Metrics, SimDuration, SimTime, SpanId,
    TraceCategory, Tracer,
};

mod topology;

pub use topology::{link_key, LinkModel, PartitionWindow, Topology};

/// Identifies a node (a station) on the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Which physical network is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Medium {
    /// The Cambridge Ring: serial unicasts, hardware NACK, no broadcast.
    #[default]
    CambridgeRing,
    /// An Ethernet-like broadcast network: true broadcast, but no
    /// negative acknowledgement — loss is silent.
    Ethernet,
}

/// Tuning knobs for the network model.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Fixed per-packet latency. Default 3.308 ms, so that a small
    /// (32-byte) basic block arrives in the paper's 3.5 ms.
    pub base_latency: SimDuration,
    /// Additional latency per payload byte. Default 6 µs.
    pub per_byte: SimDuration,
    /// Probability the destination interface refuses a packet (reported to
    /// the sender as a NACK on the ring; silent on Ethernet).
    pub p_interface_loss: f64,
    /// Probability a packet is lost *after* the interface accepted it
    /// (never reported to the sender).
    pub p_silent_loss: f64,
    /// Physical medium.
    pub medium: Medium,
    /// Seed for the loss model.
    pub seed: u64,
    /// How the station space is carved into bridged segments.
    pub topology: Topology,
    /// Behaviour of every bridge link (latency, jitter, bandwidth, loss).
    pub link: LinkModel,
    /// Scheduled partitions of bridge links, applied as a pure function
    /// of simulated time — recipe-captured, so they replay for free.
    pub partitions: Vec<PartitionWindow>,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            base_latency: SimDuration::from_micros(3_308),
            per_byte: SimDuration::from_micros(6),
            p_interface_loss: 0.0,
            p_silent_loss: 0.0,
            medium: Medium::CambridgeRing,
            seed: 0,
            topology: Topology::Flat,
            link: LinkModel::default(),
            partitions: Vec::new(),
        }
    }
}

impl Medium {
    /// Stable wire name, used by the replay recipe format.
    pub fn name(self) -> &'static str {
        match self {
            Medium::CambridgeRing => "cambridge-ring",
            Medium::Ethernet => "ethernet",
        }
    }

    /// The inverse of [`name`](Medium::name).
    pub fn parse(name: &str) -> Option<Medium> {
        match name {
            "cambridge-ring" => Some(Medium::CambridgeRing),
            "ethernet" => Some(Medium::Ethernet),
            _ => None,
        }
    }
}

impl NetworkConfig {
    /// Transmission latency for a payload of `bytes`.
    pub fn latency(&self, bytes: usize) -> SimDuration {
        self.base_latency + self.per_byte * bytes as u64
    }

    /// The config as a JSON object for the replay recipe.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "base_latency_us",
                Json::Int(self.base_latency.as_micros() as i128),
            ),
            ("per_byte_us", Json::Int(self.per_byte.as_micros() as i128)),
            ("p_interface_loss", Json::Float(self.p_interface_loss)),
            ("p_silent_loss", Json::Float(self.p_silent_loss)),
            ("medium", Json::Str(self.medium.name().to_string())),
            ("seed", Json::Int(self.seed as i128)),
            ("topology", self.topology.to_json()),
            ("link", self.link.to_json()),
            (
                "partitions",
                Json::Array(
                    self.partitions
                        .iter()
                        .map(PartitionWindow::to_json)
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuilds a config from [`to_json`](NetworkConfig::to_json) output.
    ///
    /// # Errors
    ///
    /// Missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<NetworkConfig, String> {
        let us = |field: &str| -> Result<SimDuration, String> {
            v.get(field)
                .and_then(Json::as_u64)
                .map(SimDuration::from_micros)
                .ok_or_else(|| format!("network config: missing `{field}`"))
        };
        Ok(NetworkConfig {
            base_latency: us("base_latency_us")?,
            per_byte: us("per_byte_us")?,
            p_interface_loss: v
                .get("p_interface_loss")
                .and_then(Json::as_f64)
                .ok_or("network config: missing `p_interface_loss`")?,
            p_silent_loss: v
                .get("p_silent_loss")
                .and_then(Json::as_f64)
                .ok_or("network config: missing `p_silent_loss`")?,
            medium: v
                .get("medium")
                .and_then(Json::as_str)
                .and_then(Medium::parse)
                .ok_or("network config: missing or unknown `medium`")?,
            seed: v
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("network config: missing `seed`")?,
            // The three topology fields are absent in artifacts recorded
            // before multi-segment networks existed; those worlds ran on
            // one flat segment with no bridges.
            topology: match v.get("topology") {
                Some(t) => Topology::from_json(t)?,
                None => Topology::Flat,
            },
            link: match v.get("link") {
                Some(l) => LinkModel::from_json(l)?,
                None => LinkModel::default(),
            },
            partitions: match v.get("partitions").and_then(Json::as_array) {
                Some(ws) => ws
                    .iter()
                    .map(PartitionWindow::from_json)
                    .collect::<Result<_, _>>()?,
                None => Vec::new(),
            },
        })
    }
}

/// Result of handing a packet to the transmitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxStatus {
    /// Accepted by the destination interface; will be delivered (unless it
    /// is lost silently) at the given time.
    Queued {
        /// Expected arrival time.
        deliver_at: SimTime,
    },
    /// The destination network interface did not receive the packet — the
    /// Cambridge Ring hardware reports this to the sender (§5.2), who may
    /// retransmit.
    Nack,
}

/// A packet delivered by [`Network::poll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<P> {
    /// Originating node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Arrival time.
    pub at: SimTime,
    /// Causal span the packet belongs to, if any — carried unchanged from
    /// sender to receiver, the wire leg of cross-node trace propagation.
    pub span: Option<SpanId>,
    /// Wire size the packet was sent with, bytes.
    pub bytes: u32,
    /// The payload.
    pub payload: P,
}

/// Counters describing everything the network has done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Packets handed to the transmitter.
    pub sent: u64,
    /// Packets delivered to a destination.
    pub delivered: u64,
    /// Interface-level refusals reported to senders.
    pub nacked: u64,
    /// Packets lost silently in transit.
    pub silently_lost: u64,
    /// The subset of `silently_lost` dropped crossing a bridge link — a
    /// partition cut or a per-hop loss draw.
    pub bridge_lost: u64,
    /// Broadcasts transmitted (Ethernet only).
    pub broadcasts: u64,
    /// Total payload bytes handed to the transmitter.
    pub bytes_sent: u64,
}

/// Per-bridge-link telemetry handles. `busy_us` accumulates serialization
/// time (utilization = its window delta over the window length),
/// `queue_us` accumulates time packets waited behind `link_free_at`,
/// `backlog_us` is the instantaneous serialization backlog a packet saw
/// when it reached the link, and `lost` splits the aggregate
/// `net.bridge_lost` per link.
#[derive(Debug, Clone)]
struct LinkMeters {
    bytes: Counter,
    busy_us: Counter,
    queue_us: Counter,
    lost: Counter,
    backlog_us: Gauge,
}

/// Per-segment traffic handles: sends/bytes attributed to the source
/// station's segment, deliveries to the destination's. `tx_busy_us`
/// accumulates local-leg transmitter occupancy (the ring's ~3.5 ms per
/// small packet), so a segment's windowed delta over (window × stations)
/// is the station-utilization series that makes the ~285 pkts/s
/// capacity cliff readable from a run report.
#[derive(Debug, Clone)]
struct SegMeters {
    sent: Counter,
    delivered: Counter,
    bytes: Counter,
    tx_busy_us: Counter,
}

/// Metrics handles the network bumps directly; registered once by
/// [`Network::attach_metrics`] so the hot path never does a name lookup.
#[derive(Debug, Clone)]
struct NetMeters {
    sent: Counter,
    delivered: Counter,
    nacked: Counter,
    silently_lost: Counter,
    bridge_lost: Counter,
    bytes_sent: Counter,
    /// One meter set per bridge link, in [`Topology::all_links`] order.
    /// Empty on flat topologies, so single-segment worlds register
    /// exactly the metrics they always did.
    links: Vec<((u32, u32), LinkMeters)>,
    /// One meter set per segment; empty on flat topologies.
    segs: Vec<SegMeters>,
}

impl NetMeters {
    fn new(metrics: &Metrics, topology: Topology) -> NetMeters {
        // Aggregates register first so their position in the registry is
        // identical whether or not the topology is bridged.
        let sent = metrics.counter("net.sent");
        let delivered = metrics.counter("net.delivered");
        let nacked = metrics.counter("net.nacked");
        let silently_lost = metrics.counter("net.silently_lost");
        let bridge_lost = metrics.counter("net.bridge_lost");
        let bytes_sent = metrics.counter("net.bytes_sent");
        let segs = topology.segments();
        let (links, seg_meters) = if segs > 1 {
            let links = topology
                .all_links()
                .into_iter()
                .map(|(a, b)| {
                    let name = |field: &str| format!("net.link{a}-{b}.{field}");
                    (
                        (a, b),
                        LinkMeters {
                            bytes: metrics.counter(&name("bytes")),
                            busy_us: metrics.counter(&name("busy_us")),
                            queue_us: metrics.counter(&name("queue_us")),
                            lost: metrics.counter(&name("lost")),
                            backlog_us: metrics.gauge(&name("backlog_us")),
                        },
                    )
                })
                .collect();
            let seg_meters = (0..segs)
                .map(|s| SegMeters {
                    sent: metrics.counter(&format!("net.seg{s}.sent")),
                    delivered: metrics.counter(&format!("net.seg{s}.delivered")),
                    bytes: metrics.counter(&format!("net.seg{s}.bytes")),
                    tx_busy_us: metrics.counter(&format!("net.seg{s}.tx_busy_us")),
                })
                .collect();
            (links, seg_meters)
        } else {
            (Vec::new(), Vec::new())
        };
        NetMeters {
            sent,
            delivered,
            nacked,
            silently_lost,
            bridge_lost,
            bytes_sent,
            links,
            segs: seg_meters,
        }
    }

    /// The meter set for a normalized link key; a short linear scan (the
    /// largest committed topology has four links).
    fn link(&self, key: (u32, u32)) -> Option<&LinkMeters> {
        self.links.iter().find(|(k, _)| *k == key).map(|(_, m)| m)
    }

    fn seg(&self, seg: u32) -> Option<&SegMeters> {
        self.segs.get(seg as usize)
    }
}

/// Which transmitter a packet uses. Basic-block data and tiny
/// control/debug messages are assembled at different protocol levels on
/// the ring, so a control message never queues behind a data transfer
/// already in progress (the paper's 3.5 ms-per-halt-message arithmetic
/// presumes this); messages of the *same* class still serialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxClass {
    /// Ordinary basic-block data (RPC packets).
    Data,
    /// Small control messages (debugger–agent traffic, halt broadcast).
    Control,
}

#[derive(Debug, Clone, Copy)]
struct Station {
    up: bool,
    tx_free_at: [SimTime; 2],
}

fn class_index(class: TxClass) -> usize {
    match class {
        TxClass::Data => 0,
        TxClass::Control => 1,
    }
}

/// The simulated network, generic over the payload type carried in packets.
#[derive(Debug)]
pub struct Network<P> {
    config: NetworkConfig,
    stations: Vec<Station>,
    queue: EventQueue<Delivery<P>>,
    rng: DetRng,
    forced_drops: HashMap<(NodeId, NodeId), u32>,
    stats: NetStats,
    /// Per-station counters: sends/NACKs/losses attributed to the source
    /// station, deliveries to the destination. Indexed by `NodeId`.
    per_station: Vec<NetStats>,
    /// Per-segment counters, same attribution rules, indexed by segment.
    seg_stats: Vec<NetStats>,
    /// Segment of each station, from the topology's contiguous blocks.
    seg_of: Vec<u32>,
    /// Bridge-hop paths between every segment pair, precomputed so the
    /// cross-segment send path never allocates: `paths[a * segs + b]`.
    paths: Vec<Vec<(u32, u32)>>,
    /// Segment count (1 = flat, no bridge machinery on the send path).
    segs: u32,
    /// Store-and-forward serialization: when each bridge link frees up.
    link_free_at: HashMap<(u32, u32), SimTime>,
    /// Links forced down by the driver ([`Network::set_link_up`]), on top
    /// of the scheduled partition windows.
    forced_link_down: HashSet<(u32, u32)>,
    tracer: Option<Tracer>,
    meters: Option<NetMeters>,
}

impl<P> Network<P> {
    /// Creates a network with `nodes` stations, all up.
    pub fn new(config: NetworkConfig, nodes: u32) -> Network<P> {
        let rng = DetRng::seed(config.seed ^ 0x5049_4c47); // "PILG"
        let segs = config.topology.segments();
        let seg_of: Vec<u32> = (0..nodes)
            .map(|i| config.topology.segment_of(i, nodes))
            .collect();
        let paths: Vec<Vec<(u32, u32)>> = (0..segs)
            .flat_map(|a| (0..segs).map(move |b| (a, b)))
            .map(|(a, b)| config.topology.path_links(a, b))
            .collect();
        Network {
            config,
            stations: vec![
                Station {
                    up: true,
                    tx_free_at: [SimTime::ZERO; 2]
                };
                nodes as usize
            ],
            queue: EventQueue::new(),
            rng,
            forced_drops: HashMap::new(),
            stats: NetStats::default(),
            per_station: vec![NetStats::default(); nodes as usize],
            seg_stats: vec![NetStats::default(); segs as usize],
            seg_of,
            paths,
            segs,
            link_free_at: HashMap::new(),
            forced_link_down: HashSet::new(),
            tracer: None,
            meters: None,
        }
    }

    /// The segment a station belongs to.
    pub fn segment_of(&self, node: NodeId) -> u32 {
        self.seg_of[node.0 as usize]
    }

    /// Is the bridge link between segments `a` and `b` passable at `at`?
    /// False while a scheduled [`PartitionWindow`] covers `at` or the
    /// driver has forced the link down.
    pub fn link_up(&self, a: u32, b: u32, at: SimTime) -> bool {
        let key = link_key(a, b);
        !self.forced_link_down.contains(&key)
            && !self.config.partitions.iter().any(|w| w.cuts(key, at))
    }

    /// Forces the bridge link between segments `a` and `b` down (or back
    /// up). Scheduled partition windows still apply on top.
    pub fn set_link_up(&mut self, a: u32, b: u32, up: bool) {
        let key = link_key(a, b);
        if up {
            self.forced_link_down.remove(&key);
        } else {
            self.forced_link_down.insert(key);
        }
    }

    /// Walks the bridge hops from segment `sseg` to `dseg`, starting the
    /// first hop at `depart`. Returns the far-side arrival time, or
    /// `None` when a partition cut or a per-hop loss draw ate the packet.
    /// Draw order per hop is fixed (loss, then jitter) and later hops are
    /// skipped after a loss, so the RNG stream is a pure function of the
    /// config and the send sequence.
    fn bridge_leg(
        &mut self,
        sseg: u32,
        dseg: u32,
        depart: SimTime,
        bytes: usize,
    ) -> Option<SimTime> {
        let mut t = depart;
        let path = (sseg * self.segs + dseg) as usize;
        for i in 0..self.paths[path].len() {
            let link = self.paths[path][i];
            if !self.link_up(link.0, link.1, t) || self.rng.chance(self.config.link.p_loss) {
                if let Some(lm) = self.meters.as_ref().and_then(|m| m.link(link)) {
                    lm.lost.inc();
                }
                return None;
            }
            let occupy = self.config.link.per_byte * bytes as u64;
            let jitter = self.config.link.jitter.as_micros();
            let jitter = SimDuration::from_micros(self.rng.below(jitter + 1));
            let free = self.link_free_at.entry(link).or_insert(SimTime::ZERO);
            let start = t.max(*free);
            *free = start + occupy;
            let freed = *free;
            if let Some(lm) = self.meters.as_ref().and_then(|m| m.link(link)) {
                lm.bytes.add(bytes as u64);
                lm.busy_us.add(occupy.as_micros());
                lm.queue_us.add((start - t).as_micros());
                // Serialization backlog this packet saw, including itself.
                lm.backlog_us.set((freed - t).as_micros() as i64);
            }
            t = start + occupy + self.config.link.latency + jitter;
        }
        Some(t)
    }

    /// Attaches a tracer; packet send/NACK/loss/delivery become typed
    /// `net`-category events (span-stamped when the sender supplied one).
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Registers this network's counters in `metrics` and starts bumping
    /// them (`net.sent`, `net.delivered`, `net.nacked`,
    /// `net.silently_lost`, `net.bytes_sent`). Bridged topologies also
    /// register per-link telemetry (`net.link{a}-{b}.bytes` / `.busy_us`
    /// / `.queue_us` / `.lost` / `.backlog_us`) and per-segment traffic
    /// (`net.seg{s}.sent` / `.delivered` / `.bytes`); flat worlds
    /// register nothing extra, so their reports stay byte-identical.
    pub fn attach_metrics(&mut self, metrics: &Metrics) {
        self.meters = Some(NetMeters::new(metrics, self.config.topology));
    }

    /// The active configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Number of stations.
    pub fn nodes(&self) -> u32 {
        self.stations.len() as u32
    }

    /// Activity counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// One station's counters: sends, NACKs, and silent losses are
    /// attributed to the *source* station, deliveries to the
    /// *destination*.
    pub fn station_stats(&self, node: NodeId) -> NetStats {
        self.per_station[node.0 as usize]
    }

    /// Number of segments (1 for flat topologies).
    pub fn segments(&self) -> u32 {
        self.segs
    }

    /// One segment's counters, same attribution rules as
    /// [`station_stats`](Network::station_stats).
    ///
    /// # Panics
    ///
    /// Panics if `seg` is not a segment of this topology.
    pub fn segment_stats(&self, seg: u32) -> NetStats {
        self.seg_stats[seg as usize]
    }

    /// Every bridge link of the topology, in telemetry registration
    /// order. Empty for flat topologies.
    pub fn bridge_links(&self) -> Vec<(u32, u32)> {
        self.config.topology.all_links()
    }

    /// How many stations live in one segment — the denominator that
    /// turns a segment's `tx_busy_us` window delta into per-station
    /// utilization.
    pub fn stations_in(&self, seg: u32) -> u32 {
        self.seg_of.iter().filter(|s| **s == seg).count() as u32
    }

    /// Marks a node's interface up or down (a crashed node refuses
    /// packets, which senders on the ring observe as NACKs).
    pub fn set_up(&mut self, node: NodeId, up: bool) {
        self.stations[node.0 as usize].up = up;
    }

    /// Is the node's interface up?
    pub fn is_up(&self, node: NodeId) -> bool {
        self.stations[node.0 as usize].up
    }

    /// Forces the next `count` packets from `src` to `dst` to be lost
    /// silently (after interface acceptance). Deterministic fault
    /// injection for the lost-call / lost-reply experiments (§4.1).
    pub fn drop_next(&mut self, src: NodeId, dst: NodeId, count: u32) {
        *self.forced_drops.entry((src, dst)).or_insert(0) += count;
    }

    fn take_forced_drop(&mut self, src: NodeId, dst: NodeId) -> bool {
        match self.forced_drops.get_mut(&(src, dst)) {
            Some(n) if *n > 0 => {
                *n -= 1;
                true
            }
            _ => false,
        }
    }

    /// Transmits one packet from `src` to `dst`.
    ///
    /// The transmitter is serial: if it is still busy with a previous
    /// packet, this one starts when it frees up (§5.2's "a number of
    /// messages must be sent serially"). On the ring an interface-level
    /// refusal is reported synchronously as [`TxStatus::Nack`]; on
    /// Ethernet the same loss is silent and the status still reads
    /// `Queued`.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is not a station on this network.
    pub fn send(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        payload: P,
        bytes: usize,
    ) -> TxStatus {
        self.send_spanned(now, src, dst, payload, bytes, TxClass::Data, None)
    }

    /// [`Network::send`] on a chosen transmitter class.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is not a station on this network.
    pub fn send_class(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        payload: P,
        bytes: usize,
        class: TxClass,
    ) -> TxStatus {
        self.send_spanned(now, src, dst, payload, bytes, class, None)
    }

    /// One packet-level trace event; the `wants` check happened already.
    #[cold]
    fn trace_packet(&self, time: SimTime, node: u32, span: Option<SpanId>, kind: EventKind) {
        if let Some(t) = &self.tracer {
            t.emit(time, TraceCategory::Net, Some(node), span, kind);
        }
    }

    fn wants_net(&self) -> bool {
        self.tracer
            .as_ref()
            .is_some_and(|t| t.wants(TraceCategory::Net))
    }

    /// [`Network::send_class`] carrying a causal span: the span rides the
    /// packet to the receiver (via [`Delivery::span`]) and stamps every
    /// packet-level trace event, so one RPC call's wire activity — across
    /// nodes, including retransmissions — shares one span.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is not a station on this network.
    #[allow(clippy::too_many_arguments)]
    pub fn send_spanned(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        payload: P,
        bytes: usize,
        class: TxClass,
        span: Option<SpanId>,
    ) -> TxStatus {
        assert!((src.0 as usize) < self.stations.len(), "unknown src {src}");
        assert!((dst.0 as usize) < self.stations.len(), "unknown dst {dst}");
        let sseg = self.seg_of[src.0 as usize];
        self.stats.sent += 1;
        self.stats.bytes_sent += bytes as u64;
        self.per_station[src.0 as usize].sent += 1;
        self.per_station[src.0 as usize].bytes_sent += bytes as u64;
        self.seg_stats[sseg as usize].sent += 1;
        self.seg_stats[sseg as usize].bytes_sent += bytes as u64;
        if let Some(m) = &self.meters {
            m.sent.inc();
            m.bytes_sent.add(bytes as u64);
            if let Some(s) = m.seg(sseg) {
                s.sent.inc();
                s.bytes.add(bytes as u64);
            }
        }
        let traced = self.wants_net();
        if traced {
            self.trace_packet(
                now,
                src.0,
                span,
                EventKind::PacketSent {
                    src: src.0,
                    dst: dst.0,
                    bytes: bytes as u32,
                },
            );
        }
        let ci = class_index(class);
        let start = now.max(self.stations[src.0 as usize].tx_free_at[ci]);
        let latency = self.config.latency(bytes);
        let arrive = start + latency;
        // The class's transmitter is occupied for the whole transmission.
        self.stations[src.0 as usize].tx_free_at[ci] = arrive;
        if let Some(m) = &self.meters {
            if let Some(s) = m.seg(sseg) {
                s.tx_busy_us.add(latency.as_micros());
            }
        }

        // Cross-segment: the local ring hardware can only vouch for the
        // leg it carries, so nothing beyond the first bridge ever NACKs —
        // a partition cut, a bridge loss, or a refusal by the remote
        // destination interface all look like silent loss to the sender
        // (this is why `maybe`-protocol traffic degrades under partition
        // while exactly-once retries until its attempt budget runs out).
        let dseg = self.seg_of[dst.0 as usize];
        if sseg != dseg {
            let far_arrive = match self.bridge_leg(sseg, dseg, arrive, bytes) {
                Some(t) => t,
                None => {
                    self.stats.bridge_lost += 1;
                    self.per_station[src.0 as usize].bridge_lost += 1;
                    self.seg_stats[sseg as usize].bridge_lost += 1;
                    if let Some(m) = &self.meters {
                        m.bridge_lost.inc();
                    }
                    self.lose_silently(now, src, dst, bytes as u32, span, traced);
                    return TxStatus::Queued { deliver_at: arrive };
                }
            };
            let dst_refused =
                !self.stations[dst.0 as usize].up || self.rng.chance(self.config.p_interface_loss);
            if dst_refused
                || self.take_forced_drop(src, dst)
                || self.rng.chance(self.config.p_silent_loss)
            {
                self.lose_silently(now, src, dst, bytes as u32, span, traced);
                return TxStatus::Queued {
                    deliver_at: far_arrive,
                };
            }
            self.queue.schedule(
                far_arrive,
                Delivery {
                    src,
                    dst,
                    at: far_arrive,
                    span,
                    bytes: bytes as u32,
                    payload,
                },
            );
            return TxStatus::Queued {
                deliver_at: far_arrive,
            };
        }

        let interface_lost =
            !self.stations[dst.0 as usize].up || self.rng.chance(self.config.p_interface_loss);
        if interface_lost {
            match self.config.medium {
                Medium::CambridgeRing => {
                    self.stats.nacked += 1;
                    self.per_station[src.0 as usize].nacked += 1;
                    self.seg_stats[sseg as usize].nacked += 1;
                    if let Some(m) = &self.meters {
                        m.nacked.inc();
                    }
                    if traced {
                        self.trace_packet(
                            now,
                            src.0,
                            span,
                            EventKind::PacketNacked {
                                src: src.0,
                                dst: dst.0,
                                bytes: bytes as u32,
                            },
                        );
                    }
                    return TxStatus::Nack;
                }
                Medium::Ethernet => {
                    // No NACK on Ethernet: the sender believes it was sent.
                    self.lose_silently(now, src, dst, bytes as u32, span, traced);
                    return TxStatus::Queued { deliver_at: arrive };
                }
            }
        }
        if self.take_forced_drop(src, dst) || self.rng.chance(self.config.p_silent_loss) {
            self.lose_silently(now, src, dst, bytes as u32, span, traced);
            return TxStatus::Queued { deliver_at: arrive };
        }
        self.queue.schedule(
            arrive,
            Delivery {
                src,
                dst,
                at: arrive,
                span,
                bytes: bytes as u32,
                payload,
            },
        );
        TxStatus::Queued { deliver_at: arrive }
    }

    fn lose_silently(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u32,
        span: Option<SpanId>,
        traced: bool,
    ) {
        self.stats.silently_lost += 1;
        self.per_station[src.0 as usize].silently_lost += 1;
        self.seg_stats[self.seg_of[src.0 as usize] as usize].silently_lost += 1;
        if let Some(m) = &self.meters {
            m.silently_lost.inc();
        }
        if traced {
            self.trace_packet(
                now,
                src.0,
                span,
                EventKind::PacketLost {
                    src: src.0,
                    dst: dst.0,
                    bytes,
                },
            );
        }
    }

    /// The earliest pending delivery, if any.
    pub fn next_delivery_at(&mut self) -> Option<SimTime> {
        self.queue.next_time()
    }

    /// Removes and returns every packet due at or before `now`, along with
    /// the updated statistics. Deliveries come out in arrival order.
    pub fn poll(&mut self, now: SimTime) -> (Vec<Delivery<P>>, NetStats) {
        let mut out = Vec::new();
        let traced = self.wants_net();
        while let Some((_, d)) = self.queue.pop_due(now) {
            let dseg = self.seg_of[d.dst.0 as usize];
            self.stats.delivered += 1;
            self.per_station[d.dst.0 as usize].delivered += 1;
            self.seg_stats[dseg as usize].delivered += 1;
            if let Some(m) = &self.meters {
                m.delivered.inc();
                if let Some(s) = m.seg(dseg) {
                    s.delivered.inc();
                }
            }
            if traced {
                self.trace_packet(
                    d.at,
                    d.dst.0,
                    d.span,
                    EventKind::PacketDelivered {
                        src: d.src.0,
                        dst: d.dst.0,
                        bytes: d.bytes,
                    },
                );
            }
            out.push(d);
        }
        (out, self.stats)
    }
}

impl<P: Clone> Network<P> {
    /// Ethernet-style broadcast: one transmission reaches every other *up*
    /// station, but each receiver may silently miss it (per-receiver
    /// interface/silent loss). Not available on the Cambridge Ring, which
    /// "does not provide a broadcast facility at the data-link layer"
    /// (§5.2).
    ///
    /// Returns the arrival time, or `None` when the medium has no
    /// broadcast facility.
    pub fn broadcast(
        &mut self,
        now: SimTime,
        src: NodeId,
        payload: P,
        bytes: usize,
    ) -> Option<SimTime> {
        if self.config.medium != Medium::Ethernet {
            return None;
        }
        let sseg = self.seg_of[src.0 as usize];
        self.stats.sent += 1;
        self.stats.broadcasts += 1;
        self.stats.bytes_sent += bytes as u64;
        self.per_station[src.0 as usize].sent += 1;
        self.per_station[src.0 as usize].broadcasts += 1;
        self.per_station[src.0 as usize].bytes_sent += bytes as u64;
        self.seg_stats[sseg as usize].sent += 1;
        self.seg_stats[sseg as usize].broadcasts += 1;
        self.seg_stats[sseg as usize].bytes_sent += bytes as u64;
        if let Some(m) = &self.meters {
            m.sent.inc();
            m.bytes_sent.add(bytes as u64);
            if let Some(s) = m.seg(sseg) {
                s.sent.inc();
                s.bytes.add(bytes as u64);
            }
        }
        let traced = self.wants_net();
        let ci = class_index(TxClass::Control);
        let start = now.max(self.stations[src.0 as usize].tx_free_at[ci]);
        let latency = self.config.latency(bytes);
        let arrive = start + latency;
        self.stations[src.0 as usize].tx_free_at[ci] = arrive;
        if let Some(m) = &self.meters {
            if let Some(s) = m.seg(sseg) {
                s.tx_busy_us.add(latency.as_micros());
            }
        }
        for i in 0..self.stations.len() {
            let dst = NodeId(i as u32);
            if dst == src || !self.stations[i].up {
                continue;
            }
            // A broadcast only floods the sender's own segment natively;
            // bridges re-emit it hop by hop, so remote receivers see it
            // later (or not at all if a bridge hop loses it).
            let dseg = self.seg_of[i];
            let at = if dseg == sseg {
                arrive
            } else {
                match self.bridge_leg(sseg, dseg, arrive, bytes) {
                    Some(t) => t,
                    None => {
                        self.stats.bridge_lost += 1;
                        self.per_station[src.0 as usize].bridge_lost += 1;
                        self.seg_stats[sseg as usize].bridge_lost += 1;
                        if let Some(m) = &self.meters {
                            m.bridge_lost.inc();
                        }
                        self.lose_silently(now, src, dst, bytes as u32, None, traced);
                        continue;
                    }
                }
            };
            let lost = self.rng.chance(self.config.p_interface_loss)
                || self.rng.chance(self.config.p_silent_loss)
                || self.take_forced_drop(src, dst);
            if lost {
                self.lose_silently(now, src, dst, bytes as u32, None, traced);
                continue;
            }
            self.queue.schedule(
                at,
                Delivery {
                    src,
                    dst,
                    at,
                    span: None,
                    bytes: bytes as u32,
                    payload: payload.clone(),
                },
            );
        }
        Some(arrive)
    }

    /// Reliable unicast on the ring: retransmits on NACK until the
    /// destination interface accepts, or `max_attempts` is exhausted (e.g.
    /// the node has crashed). This is exactly the halt-broadcast protocol's
    /// negative-acknowledgement scheme (§5.2).
    ///
    /// Returns `(status, attempts)`.
    pub fn send_with_retransmit(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        payload: P,
        bytes: usize,
        max_attempts: u32,
    ) -> (TxStatus, u32) {
        let mut attempts = 0;
        loop {
            attempts += 1;
            // Each attempt starts when the transmitter frees up. Reliable
            // sends are control traffic (the halt protocol, §5.2).
            let status = self.send_class(now, src, dst, payload.clone(), bytes, TxClass::Control);
            match status {
                TxStatus::Queued { .. } => return (status, attempts),
                TxStatus::Nack if attempts < max_attempts => continue,
                TxStatus::Nack => return (TxStatus::Nack, attempts),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(cfg: NetworkConfig) -> Network<u32> {
        Network::new(cfg, 4)
    }

    #[test]
    fn per_station_stats_attribute_by_direction() {
        let mut n = net(NetworkConfig::default());
        n.send(SimTime::ZERO, NodeId(0), NodeId(1), 7, 32);
        n.send(SimTime::ZERO, NodeId(2), NodeId(1), 8, 64);
        let (got, _) = n.poll(SimTime::from_secs(1));
        assert_eq!(got.len(), 2);
        let s0 = n.station_stats(NodeId(0));
        assert_eq!((s0.sent, s0.bytes_sent, s0.delivered), (1, 32, 0));
        let s1 = n.station_stats(NodeId(1));
        assert_eq!((s1.sent, s1.delivered), (0, 2), "deliveries land on dst");
        let s2 = n.station_stats(NodeId(2));
        assert_eq!((s2.sent, s2.bytes_sent), (1, 64));
        // NACKs are charged to the sender.
        n.set_up(NodeId(3), false);
        let st = n.send(SimTime::ZERO, NodeId(0), NodeId(3), 9, 32);
        assert_eq!(st, TxStatus::Nack);
        assert_eq!(n.station_stats(NodeId(0)).nacked, 1);
        assert_eq!(n.station_stats(NodeId(3)).nacked, 0);
    }

    #[test]
    fn small_basic_block_takes_3_5_ms() {
        let mut n = net(NetworkConfig::default());
        let st = n.send(SimTime::ZERO, NodeId(0), NodeId(1), 7, 32);
        match st {
            TxStatus::Queued { deliver_at } => {
                assert_eq!(deliver_at, SimTime::from_micros(3_500));
            }
            TxStatus::Nack => panic!("unexpected NACK"),
        }
    }

    #[test]
    fn serial_transmission_spaces_arrivals() {
        // Halting three remote nodes: arrivals at 3.5, 7.0, 10.5 ms — the
        // paper's "confident of contacting only two nodes" within the 8 ms
        // RPC latency window.
        let mut n = net(NetworkConfig::default());
        let mut arrivals = Vec::new();
        for dst in 1..4 {
            if let TxStatus::Queued { deliver_at } =
                n.send(SimTime::ZERO, NodeId(0), NodeId(dst), dst, 32)
            {
                arrivals.push(deliver_at.as_micros());
            }
        }
        assert_eq!(arrivals, vec![3_500, 7_000, 10_500]);
        let within_8ms = arrivals.iter().filter(|a| **a <= 8_000).count();
        assert_eq!(within_8ms, 2);
    }

    #[test]
    fn poll_delivers_in_order() {
        let mut n = net(NetworkConfig::default());
        n.send(SimTime::ZERO, NodeId(0), NodeId(1), 1, 32);
        n.send(SimTime::ZERO, NodeId(2), NodeId(1), 2, 16);
        let (due, stats) = n.poll(SimTime::from_millis(20));
        assert_eq!(due.len(), 2);
        // The 16-byte packet from the idle transmitter of node 2 wins.
        assert_eq!(due[0].payload, 2);
        assert_eq!(due[1].payload, 1);
        assert_eq!(stats.delivered, 2);
        assert_eq!(stats.sent, 2);
    }

    #[test]
    fn poll_respects_now() {
        let mut n = net(NetworkConfig::default());
        n.send(SimTime::ZERO, NodeId(0), NodeId(1), 9, 32);
        let (due, _) = n.poll(SimTime::from_millis(3));
        assert!(due.is_empty());
        assert_eq!(n.next_delivery_at(), Some(SimTime::from_micros(3_500)));
        let (due, _) = n.poll(SimTime::from_millis(4));
        assert_eq!(due.len(), 1);
    }

    #[test]
    fn down_interface_nacks_on_ring() {
        let mut n = net(NetworkConfig::default());
        n.set_up(NodeId(1), false);
        assert!(!n.is_up(NodeId(1)));
        let st = n.send(SimTime::ZERO, NodeId(0), NodeId(1), 0, 32);
        assert_eq!(st, TxStatus::Nack);
        assert_eq!(n.stats().nacked, 1);
    }

    #[test]
    fn down_interface_is_silent_on_ethernet() {
        let mut n = net(NetworkConfig {
            medium: Medium::Ethernet,
            ..Default::default()
        });
        n.set_up(NodeId(1), false);
        let st = n.send(SimTime::ZERO, NodeId(0), NodeId(1), 0, 32);
        assert!(
            matches!(st, TxStatus::Queued { .. }),
            "Ethernet gives no NACK"
        );
        let (due, stats) = n.poll(SimTime::from_millis(20));
        assert!(due.is_empty());
        assert_eq!(stats.silently_lost, 1);
    }

    #[test]
    fn retransmit_overcomes_interface_loss() {
        let mut n = net(NetworkConfig {
            p_interface_loss: 0.5,
            seed: 42,
            ..Default::default()
        });
        let mut max_attempts_seen = 0;
        let mut delivered = 0;
        for i in 0..50 {
            let (st, attempts) = n.send_with_retransmit(
                SimTime::from_millis(i * 20),
                NodeId(0),
                NodeId(1),
                i as u32,
                32,
                100,
            );
            assert!(matches!(st, TxStatus::Queued { .. }));
            max_attempts_seen = max_attempts_seen.max(attempts);
            delivered += 1;
        }
        assert_eq!(delivered, 50);
        assert!(
            max_attempts_seen > 1,
            "loss model must have forced retransmissions"
        );
    }

    #[test]
    fn retransmit_gives_up_on_crashed_node() {
        let mut n = net(NetworkConfig::default());
        n.set_up(NodeId(3), false);
        let (st, attempts) = n.send_with_retransmit(SimTime::ZERO, NodeId(0), NodeId(3), 0, 32, 5);
        assert_eq!(st, TxStatus::Nack);
        assert_eq!(attempts, 5);
    }

    #[test]
    fn forced_drops_lose_exact_packets() {
        let mut n = net(NetworkConfig::default());
        n.drop_next(NodeId(0), NodeId(1), 1);
        let st1 = n.send(SimTime::ZERO, NodeId(0), NodeId(1), 1, 32);
        assert!(
            matches!(st1, TxStatus::Queued { .. }),
            "silent loss looks fine to sender"
        );
        n.send(SimTime::ZERO, NodeId(0), NodeId(1), 2, 32);
        let (due, stats) = n.poll(SimTime::from_millis(20));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].payload, 2);
        assert_eq!(stats.silently_lost, 1);
    }

    #[test]
    fn ring_has_no_broadcast() {
        let mut n = net(NetworkConfig::default());
        assert_eq!(n.broadcast(SimTime::ZERO, NodeId(0), 0, 16), None);
    }

    #[test]
    fn ethernet_broadcast_reaches_all_up_nodes_at_once() {
        let mut n = net(NetworkConfig {
            medium: Medium::Ethernet,
            ..Default::default()
        });
        n.set_up(NodeId(2), false);
        let at = n.broadcast(SimTime::ZERO, NodeId(0), 7, 32).unwrap();
        assert_eq!(at, SimTime::from_micros(3_500));
        let (due, _) = n.poll(SimTime::from_millis(10));
        let dsts: Vec<NodeId> = due.iter().map(|d| d.dst).collect();
        assert_eq!(dsts, vec![NodeId(1), NodeId(3)]);
        assert!(
            due.iter().all(|d| d.at == at),
            "broadcast arrives everywhere at once"
        );
    }

    #[test]
    fn spans_and_instruments_follow_packets() {
        use pilgrim_sim::{EventKind, Metrics, TraceCategory, Tracer};
        let mut n = net(NetworkConfig::default());
        let tracer = Tracer::new();
        let metrics = Metrics::new();
        n.attach_tracer(tracer.clone());
        n.attach_metrics(&metrics);
        let span = tracer.next_span();
        n.drop_next(NodeId(0), NodeId(1), 1);
        n.send_spanned(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            1,
            32,
            TxClass::Data,
            Some(span),
        );
        n.send_spanned(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            2,
            32,
            TxClass::Data,
            Some(span),
        );
        let (due, _) = n.poll(SimTime::from_millis(20));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].span, Some(span), "span crosses the wire");
        assert_eq!(due[0].bytes, 32);

        let timeline = tracer.events_for_span(span);
        let kinds: Vec<&str> = timeline.iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            kinds,
            vec!["PacketSent", "PacketLost", "PacketSent", "PacketDelivered"]
        );
        assert_eq!(metrics.counter_value("net.sent"), Some(2));
        assert_eq!(metrics.counter_value("net.delivered"), Some(1));
        assert_eq!(metrics.counter_value("net.silently_lost"), Some(1));
        assert_eq!(metrics.counter_value("net.bytes_sent"), Some(64));
        assert_eq!(n.stats().bytes_sent, 64);

        // Disabling the net category suppresses packet events entirely.
        tracer.set_filter(&[TraceCategory::Rpc]);
        n.send(SimTime::from_millis(30), NodeId(0), NodeId(1), 3, 32);
        n.poll(SimTime::from_millis(60));
        assert!(tracer
            .events()
            .iter()
            .all(|e| !matches!(e.kind, EventKind::PacketSent { .. })
                || e.time < SimTime::from_millis(30)));
    }

    #[test]
    fn bridged_links_meter_bytes_queueing_and_losses() {
        use pilgrim_sim::Metrics;
        // 4 stations over a 1-arm star: 0,1 in the hub, 2,3 in the arm.
        let mut n = net(NetworkConfig {
            topology: Topology::Star { arms: 1 },
            ..Default::default()
        });
        let metrics = Metrics::new();
        n.attach_metrics(&metrics);
        assert_eq!(n.segments(), 2);
        assert_eq!(n.bridge_links(), vec![(0, 1)]);

        // Two same-size packets from different hub stations reach the
        // bridge at the same instant; the second serializes behind the
        // first (32 bytes × 1 µs/byte), so it queues for 32 µs.
        n.send(SimTime::ZERO, NodeId(0), NodeId(2), 1, 32);
        n.send(SimTime::ZERO, NodeId(1), NodeId(3), 2, 32);
        assert_eq!(metrics.counter_value("net.link0-1.bytes"), Some(64));
        assert_eq!(metrics.counter_value("net.link0-1.busy_us"), Some(64));
        assert_eq!(metrics.counter_value("net.link0-1.queue_us"), Some(32));
        assert_eq!(metrics.gauge_value("net.link0-1.backlog_us"), Some(64));
        assert_eq!(metrics.counter_value("net.link0-1.lost"), Some(0));

        // A forced cut turns the next crossing into a per-link loss.
        n.set_link_up(0, 1, false);
        n.send(SimTime::from_millis(50), NodeId(0), NodeId(2), 3, 32);
        assert_eq!(metrics.counter_value("net.link0-1.lost"), Some(1));
        assert_eq!(n.stats().bridge_lost, 1);

        // Segment attribution: sends from the hub, deliveries in the arm.
        let (due, _) = n.poll(SimTime::from_millis(20));
        assert_eq!(due.len(), 2);
        assert_eq!(n.segment_stats(0).sent, 3);
        assert_eq!(n.segment_stats(0).bridge_lost, 1);
        assert_eq!(n.segment_stats(1).delivered, 2);
        assert_eq!(metrics.counter_value("net.seg0.sent"), Some(3));
        assert_eq!(metrics.counter_value("net.seg1.delivered"), Some(2));

        // Transmitter occupancy lands on the sender's segment: three
        // 32-byte sends from the hub, each holding its station's
        // transmitter for base + 32 × per-byte.
        let per_packet = NetworkConfig::default().latency(32).as_micros();
        assert_eq!(
            metrics.counter_value("net.seg0.tx_busy_us"),
            Some(3 * per_packet)
        );
        assert_eq!(metrics.counter_value("net.seg1.tx_busy_us"), Some(0));
        assert_eq!(n.stations_in(0), 2);
        assert_eq!(n.stations_in(1), 2);
    }

    #[test]
    fn flat_networks_register_no_link_or_segment_meters() {
        use pilgrim_sim::Metrics;
        let mut n = net(NetworkConfig::default());
        let metrics = Metrics::new();
        n.attach_metrics(&metrics);
        n.send(SimTime::ZERO, NodeId(0), NodeId(1), 1, 32);
        assert_eq!(metrics.counter_value("net.sent"), Some(1));
        assert_eq!(metrics.counter_value("net.seg0.sent"), None);
        assert!(!metrics.report().contains("net.link"));
    }

    #[test]
    fn nack_is_traced_with_its_span() {
        use pilgrim_sim::{SpanId, Tracer};
        let mut n = net(NetworkConfig::default());
        let tracer = Tracer::new();
        n.attach_tracer(tracer.clone());
        n.set_up(NodeId(1), false);
        n.send_spanned(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            0,
            32,
            TxClass::Data,
            Some(SpanId(9)),
        );
        let events = tracer.events_for_span(SpanId(9));
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(kinds, vec!["PacketSent", "PacketNacked"]);
    }

    #[test]
    fn latency_scales_with_size() {
        let cfg = NetworkConfig::default();
        assert!(cfg.latency(1024) > cfg.latency(32));
        assert_eq!(
            cfg.latency(0).as_micros() + 6 * 100,
            cfg.latency(100).as_micros()
        );
    }

    #[test]
    fn same_seed_same_losses() {
        let run = |seed| {
            let mut n = net(NetworkConfig {
                p_silent_loss: 0.3,
                seed,
                ..Default::default()
            });
            for i in 0..100 {
                n.send(
                    SimTime::from_millis(i * 10),
                    NodeId(0),
                    NodeId(1),
                    i as u32,
                    32,
                );
            }
            let (due, _) = n.poll(SimTime::from_secs(10));
            due.iter().map(|d| d.payload).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn network_config_round_trips_through_json() {
        let cfg = NetworkConfig {
            base_latency: SimDuration::from_micros(1_234),
            per_byte: SimDuration::from_micros(7),
            p_interface_loss: 0.125,
            p_silent_loss: 0.0625,
            medium: Medium::Ethernet,
            seed: u64::MAX,
            topology: Topology::Star { arms: 3 },
            link: LinkModel {
                latency: SimDuration::from_micros(750),
                jitter: SimDuration::from_micros(50),
                per_byte: SimDuration::from_micros(2),
                p_loss: 0.03125,
            },
            partitions: vec![PartitionWindow {
                from: SimTime::from_secs(30),
                to: SimTime::from_secs(45),
                a: 0,
                b: 1,
            }],
        };
        let mut rendered = String::new();
        cfg.to_json().write(&mut rendered);
        let parsed = Json::parse(&rendered).expect("valid JSON");
        let back = NetworkConfig::from_json(&parsed).expect("decodes");
        assert_eq!(back.base_latency, cfg.base_latency);
        assert_eq!(back.per_byte, cfg.per_byte);
        assert_eq!(back.p_interface_loss, cfg.p_interface_loss);
        assert_eq!(back.p_silent_loss, cfg.p_silent_loss);
        assert_eq!(back.medium, cfg.medium);
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(back.topology, cfg.topology);
        assert_eq!(back.link, cfg.link);
        assert_eq!(back.partitions, cfg.partitions);
    }

    #[test]
    fn config_json_without_topology_fields_decodes_flat() {
        // Artifacts recorded before multi-segment networks existed carry no
        // topology/link/partitions keys; they must still decode.
        let old = NetworkConfig::default();
        let mut rendered = String::new();
        let Json::Object(pairs) = old.to_json() else {
            panic!("config renders an object")
        };
        let trimmed: Vec<(String, Json)> = pairs
            .into_iter()
            .filter(|(k, _)| k != "topology" && k != "link" && k != "partitions")
            .collect();
        Json::Object(trimmed).write(&mut rendered);
        let back = NetworkConfig::from_json(&Json::parse(&rendered).unwrap()).expect("decodes");
        assert_eq!(back.topology, Topology::Flat);
        assert_eq!(back.link, LinkModel::default());
        assert!(back.partitions.is_empty());
    }

    /// Two segments of two stations each over the default ring config.
    fn two_segments(link: LinkModel, partitions: Vec<PartitionWindow>) -> Network<u32> {
        Network::new(
            NetworkConfig {
                topology: Topology::RingOfRings { segments: 2 },
                link,
                partitions,
                ..Default::default()
            },
            4,
        )
    }

    #[test]
    fn stations_map_to_contiguous_segments() {
        let n = two_segments(LinkModel::default(), Vec::new());
        let segs: Vec<u32> = (0..4).map(|i| n.segment_of(NodeId(i))).collect();
        assert_eq!(segs, vec![0, 0, 1, 1]);
    }

    #[test]
    fn cross_segment_send_pays_bridge_latency() {
        let mut n = two_segments(LinkModel::default(), Vec::new());
        // Same-segment: plain ring latency.
        let TxStatus::Queued { deliver_at: local } =
            n.send(SimTime::ZERO, NodeId(0), NodeId(1), 1, 32)
        else {
            panic!("local send queued")
        };
        assert_eq!(local, SimTime::from_micros(3_500));
        // Cross-segment: + serialization (32 µs) + bridge latency (500 µs).
        let mut n = two_segments(LinkModel::default(), Vec::new());
        let TxStatus::Queued { deliver_at: far } =
            n.send(SimTime::ZERO, NodeId(0), NodeId(2), 1, 32)
        else {
            panic!("bridged send queued")
        };
        assert_eq!(far, SimTime::from_micros(3_500 + 32 + 500));
        let (due, stats) = n.poll(SimTime::from_secs(1));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].at, far);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.bridge_lost, 0);
    }

    #[test]
    fn saturated_bridge_serializes_packets() {
        // per_byte = 100 µs makes the 32-byte serialization (3.2 ms)
        // dominate: the second packet queues behind the first on the link.
        let slow = LinkModel {
            per_byte: SimDuration::from_micros(100),
            ..Default::default()
        };
        let mut n = two_segments(slow, Vec::new());
        let TxStatus::Queued { deliver_at: first } =
            n.send(SimTime::ZERO, NodeId(0), NodeId(2), 1, 32)
        else {
            panic!("queued")
        };
        let TxStatus::Queued { deliver_at: second } =
            n.send(SimTime::ZERO, NodeId(1), NodeId(3), 2, 32)
        else {
            panic!("queued")
        };
        // Both ring legs finish at 3.5 ms; the bridge serializes them.
        assert_eq!(first.as_micros(), 3_500 + 3_200 + 500);
        assert_eq!(second.as_micros(), 3_500 + 2 * 3_200 + 500);
    }

    #[test]
    fn partition_window_drops_then_heals() {
        let window = PartitionWindow {
            from: SimTime::from_millis(10),
            to: SimTime::from_millis(20),
            a: 0,
            b: 1,
        };
        let mut n = two_segments(LinkModel::default(), vec![window]);
        // Before the cut: delivered.
        let st = n.send(SimTime::ZERO, NodeId(0), NodeId(2), 1, 32);
        assert!(matches!(st, TxStatus::Queued { .. }));
        // During the cut: silently lost — crucially NOT a NACK, even on the
        // ring, because the sender's segment accepted the packet.
        let st = n.send(SimTime::from_millis(12), NodeId(0), NodeId(2), 2, 32);
        assert!(
            matches!(st, TxStatus::Queued { .. }),
            "no NACK over bridges"
        );
        // After the heal: delivered again.
        let st = n.send(SimTime::from_millis(25), NodeId(0), NodeId(2), 3, 32);
        assert!(matches!(st, TxStatus::Queued { .. }));
        let (due, stats) = n.poll(SimTime::from_secs(1));
        let payloads: Vec<u32> = due.iter().map(|d| d.payload).collect();
        assert_eq!(payloads, vec![1, 3]);
        assert_eq!(stats.bridge_lost, 1);
        assert_eq!(stats.silently_lost, 1, "bridge losses count as silent");
    }

    #[test]
    fn driver_forced_link_down_behaves_like_partition() {
        let mut n = two_segments(LinkModel::default(), Vec::new());
        n.set_link_up(0, 1, false);
        assert!(!n.link_up(0, 1, SimTime::ZERO));
        n.send(SimTime::ZERO, NodeId(0), NodeId(2), 1, 32);
        n.set_link_up(0, 1, true);
        assert!(n.link_up(0, 1, SimTime::ZERO));
        n.send(SimTime::from_millis(10), NodeId(0), NodeId(2), 2, 32);
        let (due, stats) = n.poll(SimTime::from_secs(1));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].payload, 2);
        assert_eq!(stats.bridge_lost, 1);
    }

    #[test]
    fn remote_down_interface_never_nacks() {
        // A crashed destination on the *same* segment NACKs on the ring;
        // across a bridge the same condition is a silent loss.
        let mut n = two_segments(LinkModel::default(), Vec::new());
        n.set_up(NodeId(2), false);
        let st = n.send(SimTime::ZERO, NodeId(0), NodeId(2), 1, 32);
        assert!(matches!(st, TxStatus::Queued { .. }));
        let (due, stats) = n.poll(SimTime::from_secs(1));
        assert!(due.is_empty());
        assert_eq!(stats.silently_lost, 1);
        assert_eq!(stats.nacked, 0);
    }

    #[test]
    fn bridge_jitter_is_bounded_and_seeded() {
        let jittery = LinkModel {
            jitter: SimDuration::from_micros(200),
            ..Default::default()
        };
        let run = |seed: u64| {
            let mut n = Network::<u32>::new(
                NetworkConfig {
                    topology: Topology::RingOfRings { segments: 2 },
                    link: jittery,
                    seed,
                    ..Default::default()
                },
                4,
            );
            let mut arrivals = Vec::new();
            for i in 0..20u64 {
                let at = SimTime::from_millis(i * 10);
                if let TxStatus::Queued { deliver_at } =
                    n.send(at, NodeId(0), NodeId(2), i as u32, 32)
                {
                    arrivals.push(deliver_at.as_micros() - at.as_micros());
                }
            }
            arrivals
        };
        let a = run(3);
        assert_eq!(a, run(3), "jitter is a pure function of the seed");
        let base = 3_500 + 32 + 500;
        assert!(a.iter().all(|&d| d >= base && d <= base + 200));
        assert!(a.iter().any(|&d| d != base), "jitter actually fires");
    }

    #[test]
    fn lossy_bridge_drops_a_fraction() {
        let lossy = LinkModel {
            p_loss: 0.5,
            ..Default::default()
        };
        let mut n = two_segments(lossy, Vec::new());
        for i in 0..100u64 {
            n.send(
                SimTime::from_millis(i * 10),
                NodeId(0),
                NodeId(2),
                i as u32,
                32,
            );
        }
        let (due, stats) = n.poll(SimTime::from_secs(10));
        assert!(stats.bridge_lost > 20 && stats.bridge_lost < 80);
        assert_eq!(due.len() as u64 + stats.bridge_lost, 100);
    }

    #[test]
    fn broadcast_crosses_bridges_late() {
        let mut n = Network::<u32>::new(
            NetworkConfig {
                medium: Medium::Ethernet,
                topology: Topology::RingOfRings { segments: 2 },
                ..Default::default()
            },
            4,
        );
        let local_at = n.broadcast(SimTime::ZERO, NodeId(0), 7, 32).unwrap();
        let (due, _) = n.poll(SimTime::from_secs(1));
        assert_eq!(due.len(), 3);
        for d in &due {
            if n.segment_of(d.dst) == 0 {
                assert_eq!(d.at, local_at);
            } else {
                assert!(d.at > local_at, "remote receivers hear it later");
            }
        }
    }
}
