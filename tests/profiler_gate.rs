//! Profiler and watchpoint determinism gates.
//!
//! Profiling is an observer: it must never perturb what it observes, and
//! in a deterministic simulation it must itself be deterministic. These
//! tests pin both properties — identical runs produce byte-identical
//! folded-stack profiles (including under record/replay), turning the
//! profiler on leaves the event trace untouched, and a metric watchpoint
//! halts the world at the exact sync point where the metric first moves,
//! at the same instant on every run.

use pilgrim::replay::{replay, Artifact};
use pilgrim::{DebugEvent, NodeConfig, SimDuration, SimTime, Value, World};

const NODE0: &str = "\
ping = proc (x: int) returns (int)
 fail(\"only node 1 implements ping\")
end

main = proc ()
 sleep(5)
 r: int := call ping(21) at 1
 print(\"got \" || int$unparse(r))
end";

const NODE1: &str = "\
ping = proc (x: int) returns (int)
 print(\"ping \" || int$unparse(x))
 return (x * 2)
end";

/// The semantics-lock scenario (sleep + cross-node RPC + breakpoint
/// hit/resume, pinned seed), optionally profiled.
fn lock_scenario(profile: bool) -> World {
    let mut w = World::builder()
        .nodes(2)
        .program(NODE0)
        .program_for(1, NODE1)
        .seed(42)
        .node_config(NodeConfig {
            profile_vm: profile,
            ..Default::default()
        })
        .build()
        .expect("scenario builds");
    w.debug_connect(&[0, 1], false).unwrap();
    w.break_at_proc(1, "ping").unwrap();
    w.spawn(0, "main", vec![]);
    let ev = w.wait_for_stop(SimDuration::from_secs(10)).unwrap();
    let DebugEvent::BreakpointHit { pid, .. } = ev else {
        panic!("expected breakpoint hit, got {ev:?}");
    };
    let bp = w.debugger().unwrap().breakpoints()[0].bp;
    w.clear_breakpoint(1, bp).unwrap();
    w.continue_process(1, pid).unwrap();
    w.debug_resume_all().unwrap();
    w.run_until_idle(SimTime::from_secs(30));
    w
}

#[test]
fn profiled_lock_scenario_folds_byte_identically_twice() {
    let first = lock_scenario(true).folded_stacks();
    let second = lock_scenario(true).folded_stacks();
    assert!(!first.is_empty(), "profiled run produced no stacks");
    assert_eq!(first, second, "identical runs profiled differently");
    // The profile covers both sides of the RPC.
    assert!(first.contains("node0;main"), "{first}");
    assert!(first.contains("node1;"), "{first}");
    // Folded lines are sorted, so the document equals its sorted self.
    let mut lines: Vec<&str> = first.lines().collect();
    let rendered = lines.join("\n");
    lines.sort_unstable();
    assert_eq!(lines.join("\n"), rendered, "folded lines not sorted");
}

#[test]
fn replay_reproduces_the_embedded_profile() {
    let world = lock_scenario(true);
    let folded = world.folded_stacks();
    let text = world.record().render();
    drop(world);

    let artifact = Artifact::parse(&text).expect("artifact parses");
    assert_eq!(
        artifact.profile.as_deref(),
        Some(folded.as_str()),
        "profiled recordings embed the folded snapshot"
    );
    let report = replay(&artifact).expect("replay runs");
    assert!(report.divergence.is_none());
    assert_eq!(
        report.profile_identical,
        Some(true),
        "replayed profile differs from the recorded one"
    );
}

#[test]
fn unprofiled_recordings_have_no_profile_section() {
    let artifact = lock_scenario(false).record();
    assert!(artifact.profile.is_none());
    let report = replay(&Artifact::parse(&artifact.render()).unwrap()).unwrap();
    assert_eq!(report.profile_identical, None);
}

#[test]
fn profiling_does_not_perturb_the_trace() {
    // The observer effect gate: the event trace of a profiled run must be
    // byte-identical to the unprofiled run's.
    let plain = lock_scenario(false).trace_jsonl();
    let profiled = lock_scenario(true).trace_jsonl();
    assert_eq!(plain, profiled, "profiling changed observable behaviour");
}

#[test]
fn time_ledgers_partition_the_run() {
    let w = lock_scenario(true);
    let ledgers = w.node(0).time_ledgers();
    let (_, name, _, main_ledger) = ledgers
        .iter()
        .find(|(_, name, _, _)| name == "main")
        .expect("main has a ledger");
    assert_eq!(name, "main");
    assert!(
        main_ledger.executing > SimDuration::ZERO,
        "main executed instructions"
    );
    // The sleeping interval opens at the sync point *after* the sleep
    // call executes, so it lands a step short of the nominal 5ms.
    assert!(
        main_ledger.sleeping >= SimDuration::from_millis(4),
        "main slept ~5ms: {}",
        main_ledger.render()
    );
    assert!(
        main_ledger.blocked_rpc > SimDuration::ZERO,
        "main blocked on its remote call: {}",
        main_ledger.render()
    );
    // The caller's RPC wait is attributed to the call's causal span.
    let waits = w.node(0).rpc_span_waits();
    assert!(
        waits.iter().any(|(_, d)| *d > SimDuration::ZERO),
        "no span-attributed rpc wait: {waits:?}"
    );
}

// ---------------------------------------------------------------------
// Watchpoints
// ---------------------------------------------------------------------

const MAYBE_PINGER: &str = "\
pong = proc (n: int) returns (int)
 return (n)
end
main = proc (count: int)
 good: int := 0
 bad: int := 0
 for i: int := 1 to count do
  ok: bool := true
  r: int := 0
  ok, r := maybecall pong(i) at 1
  if ok then
   good := good + 1
  else
   bad := bad + 1
  end
 end
 print(\"bad \" || int$unparse(bad))
end";

/// Ten maybe-calls with the third call's packet dropped: exactly one
/// fails, so `rpc.failed` steps 0 -> 1 at one deterministic sync point.
fn one_failure_world() -> World {
    let mut w = World::builder()
        .nodes(2)
        .program(MAYBE_PINGER)
        .seed(42)
        .debugger(false)
        .build()
        .unwrap();
    w.arm_watch("rpc.failed > 0").expect("expression parses");
    w.run_for(SimDuration::from_millis(40));
    w.inject_drop(0, 1, 1);
    w.spawn(0, "main", vec![Value::Int(10)]);
    w.run_until_idle(SimTime::from_secs(120));
    w
}

#[test]
fn watch_halts_at_the_first_failed_rpc() {
    let w = one_failure_world();
    let trips = w.watch_trips();
    assert_eq!(trips.len(), 1, "exactly one watch armed: {trips:?}");
    let (_, expr, trip) = &trips[0];
    assert_eq!(expr, "rpc.failed > 0");
    assert_eq!(trip.value, 1, "halted at the *first* increment");
    assert_eq!(
        w.now(),
        trip.at,
        "the run loop stopped at the tripping sync point"
    );
    assert!(
        trip.at < SimTime::from_secs(120),
        "world halted before the limit"
    );
    assert!(
        trip.span.is_some(),
        "the trip names the tripping activity's span"
    );
}

#[test]
fn watch_trip_point_is_pinned_across_runs() {
    let a = one_failure_world();
    let b = one_failure_world();
    let ta = &a.watch_trips()[0].2;
    let tb = &b.watch_trips()[0].2;
    assert_eq!(ta, tb, "trip (time, sync index, value, span) not stable");
    // Pin the exact trip coordinates so any scheduler/metrics reordering
    // that moves the first observable failure shows up here.
    assert_eq!(ta.value, 1);
    assert_eq!(ta.at, a.now());
}

#[test]
fn replay_reproduces_the_watch_trip() {
    let w = one_failure_world();
    let original = w.watch_trips();
    let text = w.record().render();
    drop(w);

    let report = replay(&Artifact::parse(&text).unwrap()).expect("replay runs");
    assert!(
        report.divergence.is_none(),
        "watch-bearing journal diverged"
    );
    assert_eq!(
        report.world.watch_trips(),
        original,
        "replayed trip differs from the recorded run"
    );
}

#[test]
fn cleared_watches_do_not_trip_and_runs_complete() {
    let mut w = World::builder()
        .nodes(2)
        .program(MAYBE_PINGER)
        .seed(42)
        .debugger(false)
        .build()
        .unwrap();
    let id = w.arm_watch("rpc.failed > 0").unwrap();
    assert!(w.clear_watch(id));
    w.inject_drop(0, 1, 1);
    w.spawn(0, "main", vec![Value::Int(10)]);
    w.run_until_idle(SimTime::from_secs(120));
    assert!(w.watch_trips().is_empty());
    assert_eq!(w.console(0), vec!["bad 1".to_string()]);
}
