//! Parallel-stepping soak: a 64-node ring under packet loss, with
//! watchpoints armed, driven window-by-window for 200 lockstep windows at
//! every thread count across a seed sweep — asserting no divergence from
//! the serial run and no panic anywhere.
//!
//! Ignored by default (it steps 64 nodes × 200 windows × 4 modes × 3
//! seeds); the CI nightly-style job runs it with `--ignored`.

use pilgrim::{twin_threads, NetworkConfig, SimDuration, SimTime, Value, World};

const RING_NODES: u32 = 64;
const WINDOWS: u64 = 200;

/// Every node runs the same program: `main` pings its ring successor
/// `rounds` times while serving pings from its predecessor.
const RING: &str = "\
ping = proc (x: int) returns (int)
 return (x + my_node())
end

main = proc (rounds: int)
 nxt: int := my_node() + 1
 if nxt >= 64 then
  nxt := 0
 end
 total: int := 0
 for i: int := 1 to rounds do
  total := total + call ping(i) at nxt
 end
 print(\"ring \" || int$unparse(my_node()) || \" total \" || int$unparse(total))
end";

/// Builds the ring, arms watchpoints, spawns a client on every node, and
/// pumps exactly [`WINDOWS`] lockstep windows (continuing through any
/// watch-trip halt), then drains to idle.
fn soak(seed: u64, threads: usize) -> World {
    let net = NetworkConfig {
        p_silent_loss: 0.02,
        p_interface_loss: 0.01,
        ..NetworkConfig::default()
    };
    let mut w = World::builder()
        .nodes(RING_NODES)
        .program(RING)
        .network(net)
        .seed(seed)
        .step_threads(threads)
        .build()
        .expect("ring builds");
    // One watch that trips mid-soak (lost packets force retransmissions)
    // and one that never does: trips must land on the same sync index in
    // every mode, and armed-but-silent watches must stay silent.
    w.arm_watch("rpc.retransmits > 3").unwrap();
    w.arm_watch("rpc.failed > 1000000").unwrap();
    for node in 0..RING_NODES {
        w.spawn(node, "main", vec![Value::Int(25)]);
    }
    // The builder clamps the lockstep window to the network base latency;
    // pump in exact window-sized slices so every mode sees the same 200
    // sync points. `run_for` returns early at a watch trip, so each slice
    // re-issues the remainder.
    let window = SimDuration::from_micros(3_308);
    for _ in 0..WINDOWS {
        let target = w.now() + window;
        while w.now() < target {
            w.run_for(target - w.now());
        }
    }
    w.run_until_idle(SimTime::from_secs(120));
    w
}

#[test]
#[ignore = "soak: 64 nodes x 200 windows x 4 modes x 3 seeds; run via --ignored"]
fn soak_ring_is_deterministic_across_thread_counts() {
    for seed in [1u64, 0xbeef, 0x5eed_5eed] {
        let serial = pilgrim::capture(&soak(seed, 1));
        assert!(
            !serial.watch_trips.is_empty(),
            "seed {seed:#x}: the retransmit watch must trip under loss"
        );
        for threads in twin_threads() {
            let parallel = pilgrim::capture(&soak(seed, threads));
            assert!(
                serial.trace == parallel.trace,
                "seed {seed:#x}: trace diverged at {threads} threads"
            );
            assert!(
                serial.folded_stacks == parallel.folded_stacks,
                "seed {seed:#x}: folded stacks diverged at {threads} threads"
            );
            assert!(
                serial.metrics == parallel.metrics,
                "seed {seed:#x}: metrics diverged at {threads} threads"
            );
            assert!(
                serial.artifact == parallel.artifact,
                "seed {seed:#x}: record artifact diverged at {threads} threads"
            );
            assert_eq!(
                serial.watch_trips, parallel.watch_trips,
                "seed {seed:#x}: watch trips diverged at {threads} threads"
            );
        }
    }
}
