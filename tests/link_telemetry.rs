//! Gates for per-link bridge telemetry: a saturated bridge reports
//! over 90% busy-time utilization while an untouched link reports zero, a
//! partitioned link's losses split out of the aggregate
//! `net.bridge_lost`, segment rollups appear in the observability
//! report, and all of it is twin-run deterministic.

use pilgrim::{LinkModel, NetworkConfig, PartitionWindow, SimTime, Topology, Value, World};

const SERVER: &str = "\
ping = proc (s: string) returns (int)
 return (1)
end";

const CLIENT: &str = "\
ping = proc (s: string) returns (int)
 fail(\"the hub implements ping\")
end

blast = proc (n: int, payload: string)
 total: int := 0
 for i: int := 1 to n do
  total := total + call ping(payload) at 0
 end
end";

/// A star world with two arms and no debugger station: 6 stations over
/// 3 segments (hub 0,1 / arm 2,3 / arm 4,5), bridge links (0,1) and
/// (0,2). Only arm 1 talks, so link 0-1 carries every byte and link 0-2
/// carries none.
fn star_world(partitions: Vec<PartitionWindow>) -> World {
    let net = NetworkConfig {
        topology: Topology::Star { arms: 2 },
        link: LinkModel::default(), // 1 µs/byte bridge serialization
        // The default ring charges 3.3 ms base and 6 µs/byte on local
        // legs, which would make the senders' own rings the bottleneck;
        // a fast local ring keeps the bridge the contended resource.
        base_latency: pilgrim::SimDuration::from_micros(100),
        per_byte: pilgrim::SimDuration::from_micros(1),
        partitions,
        ..Default::default()
    };
    let mut w = World::builder()
        .nodes(6)
        .debugger(false)
        .program(CLIENT)
        .program_for(0, SERVER)
        .network(net)
        .seed(0x11de)
        // Shape the always-on store so the whole run's windows are
        // retained: utilization is judged over the delivery window.
        .coarse_window(64, 4096)
        .build()
        .expect("builds");
    // Closed-loop load: 24 sequential callers per client node, 2 KB
    // payloads. The two stations feed requests faster than the bridge
    // serializes them, so its queue never drains — yet the ~48 in-flight
    // requests keep the queueing delay under the retry timeout, so no
    // timeout storm stretches the run.
    let payload = Value::Str("x".repeat(2000).into());
    for node in [2u32, 3] {
        for _ in 0..24 {
            w.spawn(node, "blast", vec![Value::Int(15), payload.clone()]);
        }
    }
    w.run_until_idle(SimTime::from_secs(600));
    w
}

fn counter(w: &World, name: &str) -> u64 {
    w.metrics().counter_value(name).unwrap_or(0)
}

#[test]
fn saturated_link_reports_high_utilization_and_idle_link_zero() {
    let w = star_world(Vec::new());
    assert_eq!(w.bridge_links(), vec![(0, 1), (0, 2)]);

    // Utilization over the delivery window: the run's tail is retry
    // timers burning down long after the last byte crossed, so the
    // honest denominator ends when hub deliveries stop — read from the
    // same tsdb series the run reports are built from.
    let busy = counter(&w, "net.link0-1.busy_us");
    let delivered_end = w
        .tsdb_counter_windows("net.seg0.delivered", 1)
        .into_iter()
        .filter(|(_, _, delta)| *delta > 0)
        .map(|(_, end, _)| end)
        .max()
        .expect("hub deliveries must appear in the retained windows");
    let util = busy * 100 / delivered_end.max(1);
    assert!(
        util > 90,
        "the blasted link must be near-saturated over the delivery window: \
         busy {busy} µs of {delivered_end} µs = {util}%"
    );
    assert!(counter(&w, "net.link0-1.bytes") > 0);
    assert!(
        counter(&w, "net.link0-1.queue_us") > 0,
        "closed-loop concurrency must queue behind the serializing link"
    );

    assert_eq!(counter(&w, "net.link0-2.bytes"), 0, "arm 2 never spoke");
    assert_eq!(counter(&w, "net.link0-2.busy_us"), 0);
    assert_eq!(counter(&w, "net.link0-2.lost"), 0);

    // Segment rollups: hub and the talking arm appear, the silent arm
    // is skipped like any all-zero row.
    let report = w.observability_report();
    assert!(report.contains("net seg0:"), "{report}");
    assert!(report.contains("net seg1:"), "{report}");
    assert!(!report.contains("net seg2:"), "{report}");
}

#[test]
fn per_link_losses_split_the_aggregate() {
    // Cut link 0-1 for the first 50 ms: every loss in the run happens
    // there, so the per-link counter must equal the aggregate and the
    // untouched link must stay clean.
    let w = star_world(vec![PartitionWindow {
        from: SimTime::ZERO,
        to: SimTime::from_millis(50),
        a: 0,
        b: 1,
    }]);
    let lost01 = counter(&w, "net.link0-1.lost");
    let lost02 = counter(&w, "net.link0-2.lost");
    let aggregate = counter(&w, "net.bridge_lost");
    assert!(lost01 > 0, "packets sent into the cut must be lost");
    assert_eq!(lost02, 0);
    assert_eq!(
        lost01, aggregate,
        "per-link losses must sum to the aggregate"
    );
}

#[test]
fn link_telemetry_is_twin_run_deterministic() {
    let a = star_world(Vec::new());
    let b = star_world(Vec::new());
    assert_eq!(
        a.observability_report(),
        b.observability_report(),
        "telemetry must be byte-identical across runs"
    );
}
