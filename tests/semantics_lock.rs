//! Golden "semantics lock" over the simulation hot path.
//!
//! One multi-node scenario exercising every timing-sensitive subsystem at
//! once — a timer expiry (sleep), a cross-node RPC, and a debugger
//! breakpoint hit + resume — under a pinned seed. The full `vm` + `clock`
//! trace, the consoles, and the final per-node clocks are asserted against
//! a committed snapshot. Any change to instruction costs, scheduling
//! order, packet sizing, or delivery order shows up here as a diff, which
//! is exactly the point: the hot-path refactors (zero-clone dispatch, the
//! slot arena, event-queue bookkeeping) must reproduce this run
//! bit-for-bit.
//!
//! If a PR changes semantics *on purpose* (e.g. a new wire-size model),
//! the snapshot below must be re-captured and the change called out in the
//! PR description.

use pilgrim::{DebugEvent, SimDuration, SimTime, TraceCategory, World};

const NODE0: &str = "\
ping = proc (x: int) returns (int)
 fail(\"only node 1 implements ping\")
end

main = proc ()
 sleep(5)
 r: int := call ping(21) at 1
 print(\"got \" || int$unparse(r))
end";

const NODE1: &str = "\
ping = proc (x: int) returns (int)
 print(\"ping \" || int$unparse(x))
 return (x * 2)
end";

fn run_scenario() -> World {
    let mut w = World::builder()
        .nodes(2)
        .program(NODE0)
        .program_for(1, NODE1)
        .seed(42)
        .build()
        .expect("scenario builds");
    w.debug_connect(&[0, 1], false).unwrap();
    w.break_at_proc(1, "ping").unwrap();
    w.spawn(0, "main", vec![]);

    let ev = w.wait_for_stop(SimDuration::from_secs(10)).unwrap();
    let DebugEvent::BreakpointHit {
        node, proc, pid, ..
    } = &ev
    else {
        panic!("expected breakpoint hit, got {ev:?}");
    };
    assert_eq!(node.0, 1);
    assert_eq!(proc, "ping");

    let pid = *pid;
    let bp = w.debugger().unwrap().breakpoints()[0].bp;
    w.clear_breakpoint(1, bp).unwrap();
    w.continue_process(1, pid).unwrap();
    w.debug_resume_all().unwrap();
    w.run_until_idle(SimTime::from_secs(30));
    w
}

/// Renders the scenario's observable behaviour as one stable string:
/// the vm/clock trace lines, both consoles, and the final node clocks.
fn digest(w: &World) -> String {
    let mut out = String::new();
    let mut n = 0usize;
    w.tracer().for_each(|e| {
        if matches!(e.category, TraceCategory::Vm | TraceCategory::Clock) {
            out.push_str(&e.to_string());
            out.push('\n');
            n += 1;
        }
    });
    out.push_str(&format!("vm+clock events: {n}\n"));
    for i in 0..2 {
        for line in w.console(i) {
            out.push_str(&format!("console n{i}: {line}\n"));
        }
    }
    for i in 0..2 {
        out.push_str(&format!(
            "final clock n{i}: {} (logical {})\n",
            w.node(i).clock(),
            w.node(i).logical_now()
        ));
    }
    out.push_str(&format!("world now: {}\n", w.now()));
    out
}

// Captured from the seed-42 run before the hot-path refactor (and after
// the wire-size remodel in this same PR). Regenerate by running this test
// with `SEMANTICS_LOCK_DUMP=1` and pasting the printed digest.
const SNAPSHOT: &str = include_str!("semantics_lock.snapshot.txt");

#[test]
fn pinned_seed_scenario_matches_committed_snapshot() {
    let w = run_scenario();
    let d = digest(&w);
    if std::env::var_os("SEMANTICS_LOCK_DUMP").is_some() {
        println!("----- digest -----\n{d}----- end digest -----");
    }
    assert_eq!(
        d, SNAPSHOT,
        "simulation semantics drifted from the committed snapshot"
    );
}

#[test]
fn scenario_is_deterministic_across_runs() {
    let a = digest(&run_scenario());
    let b = digest(&run_scenario());
    assert_eq!(a, b);
}
