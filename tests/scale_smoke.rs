//! Scale smoke tests for the quiescence-aware pump.
//!
//! The ROADMAP's north-star is two orders of magnitude past the 1k-process
//! macro-bench: these tests actually instantiate those worlds. The smoke
//! test runs the 100-node × 1k-process sparse-sleep workload (shrunk in
//! debug builds so plain `cargo test` stays quick; CI runs it again with
//! `--release` at full size), the memory test measures resident bytes per
//! live process against a hard ceiling, and the million-process spawn
//! churn is `#[ignore]`d for the nightly job next to the parallel soak:
//! `cargo test --release --test scale_smoke -- --ignored`.

use pilgrim::{SimTime, Value, World};

/// Workers sleep a node-staggered duration, so at any instant almost all
/// of the 100 nodes are quiescent — the skip pump's target regime.
const SPARSE_SLEEPERS: &str = "\
worker = proc (k: int) returns (int)
 sleep(k)
 return (k)
end
main = proc (n: int)
 d: int := 5 + my_node() * 3
 for i: int := 1 to n do
  fork worker(d)
 end
end";

/// Workers park on a sleep far past the measurement horizon, keeping
/// every spawned process alive (stack, frame, timer entry) while resident
/// memory is read.
const PARKED_SLEEPERS: &str = "\
worker = proc ()
 sleep(600000)
end
main = proc (n: int)
 for i: int := 1 to n do
  fork worker()
 end
end";

/// Empty workers: spawn, run one slice, exit — pure lifecycle churn.
const CHURN: &str = "\
worker = proc ()
end
main = proc (n: int)
 for i: int := 1 to n do
  fork worker()
 end
end";

/// Processes per node for the smoke and memory tests. Debug builds step
/// the VM an order of magnitude slower, so plain `cargo test` runs a
/// 10k-process world; `--release` (CI's scale-smoke step) runs the full
/// 100k.
const PER_NODE: i64 = if cfg!(debug_assertions) { 100 } else { 1_000 };

/// Resident set size of this process, in bytes, from `/proc/self/statm`.
fn resident_bytes() -> u64 {
    let statm = std::fs::read_to_string("/proc/self/statm").expect("statm readable");
    let pages: u64 = statm
        .split_whitespace()
        .nth(1)
        .expect("statm has a resident field")
        .parse()
        .expect("resident pages parse");
    pages * 4096
}

/// The 100k-process sparse-sleep world (the `world/100k_processes` bench
/// body) runs to completion and leaves a coherent activity index.
#[test]
fn hundred_k_processes_smoke() {
    let mut w = World::builder()
        .nodes(100)
        .program(SPARSE_SLEEPERS)
        .debugger(false)
        .build()
        .unwrap();
    for node in 0..100 {
        w.spawn(node, "main", vec![Value::Int(PER_NODE)]);
    }
    w.run_until_idle(SimTime::from_secs(60));
    assert!(
        w.now() < SimTime::from_secs(60),
        "sparse sleepers must drain (go idle) within simulated 60s"
    );
    assert!(w.now() > SimTime::ZERO);
    w.debug_validate_index();
}

/// Live processes must stay cheap: resident growth per parked process is
/// bounded. The measured release-build number is recorded in
/// EXPERIMENTS.md; the ceiling here is deliberately loose so allocator
/// slack and debug layouts never flake the suite.
#[test]
fn memory_per_process_bounded() {
    let before = resident_bytes();
    let mut w = World::builder()
        .nodes(100)
        .program(PARKED_SLEEPERS)
        .debugger(false)
        .build()
        .unwrap();
    for node in 0..100 {
        w.spawn(node, "main", vec![Value::Int(PER_NODE)]);
    }
    // Long enough simulated time for every fork to run and park; the
    // parked timers keep the world from going idle, so it runs to the
    // limit.
    w.run_until_idle(SimTime::from_secs(1));
    assert_eq!(
        w.now(),
        SimTime::from_secs(1),
        "parked sleepers must still be pending"
    );
    let procs = 100 * PER_NODE as u64;
    let per_proc = resident_bytes().saturating_sub(before) / procs;
    println!("memory per live process: {per_proc} bytes ({procs} processes)");
    assert!(
        per_proc < 8 * 1024,
        "{per_proc} bytes per process blows the 8 KiB ceiling"
    );
    std::hint::black_box(w.now());
}

/// One million process lifecycles (the `world/1m_processes_spawn` bench
/// body). Nightly-only: ~2s in release, far slower in debug.
#[test]
#[ignore = "nightly scale test: cargo test --release --test scale_smoke -- --ignored"]
fn million_process_spawn() {
    let mut w = World::builder()
        .nodes(100)
        .program(CHURN)
        .debugger(false)
        .build()
        .unwrap();
    for node in 0..100 {
        w.spawn(node, "main", vec![Value::Int(10_000)]);
    }
    w.run_until_idle(SimTime::from_secs(600));
    assert!(
        w.now() < SimTime::from_secs(600),
        "a million empty workers must drain (go idle) well before the limit"
    );
    w.debug_validate_index();
}
