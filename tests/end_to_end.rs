//! Whole-system integration: a realistic distributed application (client
//! nodes + shared services) debugged end-to-end, exercising every layer —
//! language, supervisor, ring, RPC, agent, debugger proper, services —
//! in one scenario per test.

use pilgrim::{
    DebugEvent, MaybeDiagnosis, NodeId, SimDuration, SimTime, StateView, Value, WireValue, World,
};
use pilgrim_services::{AotConfig, AotMan, TimeoutStrategy, CLIENT_EXTERNS, FILE_SERVER_SOURCE};

/// A small "order processing" application:
/// node 0 — front end; node 1 — pricing service (CCLU); node 2 — file
/// server (CCLU, from pilgrim-services); node 3 — AOTMan (native).
const FRONT_END: &str = "\
extern fs_write = proc (name: string, data: string) returns (bool)
extern fs_read = proc (name: string, caller: int) returns (bool, string, int)
extern aot_issue = proc () returns (int, int)
extern aot_refresh = proc (t: int) returns (bool)

order = record[id: int, qty: int, total: int]

print_order = proc (o: order) returns (string)
 s: string := \"order#\" || int$unparse(o.id) || \" x\" || int$unparse(o.qty)
 return (s || \" = \" || int$unparse(o.total))
end

price = proc (qty: int) returns (int)
 fail(\"only the pricing node implements price\")
end

process_order = proc (id: int, qty: int) returns (int)
 unit: int := call price(qty) at 1
 o: order := order${id: id, qty: qty, total: unit * qty}
 print(o)
 ok: bool := call fs_write(\"order-\" || int$unparse(id), int$unparse(o.total)) at 2
 return (o.total)
end

main = proc ()
 tuid: int := 0
 life: int := 0
 tuid, life := call aot_issue() at 3
 grand: int := 0
 for id: int := 1 to 3 do
  grand := grand + process_order(id, id * 2)
  ok: bool := call aot_refresh(tuid) at 3
 end
 print(\"grand total \" || int$unparse(grand))
end";

const PRICING: &str = "\
price = proc (qty: int) returns (int)
 if qty >= 5 then
  return (90)
 end
 return (100)
end";

fn build_app() -> (World, AotMan) {
    let mut w = World::builder()
        .nodes(4)
        .program(FRONT_END)
        .program_for(1, PRICING)
        .program_for(2, FILE_SERVER_SOURCE)
        .build()
        .expect("application builds");
    let aot = AotMan::install(
        &mut w,
        3,
        AotConfig {
            lifetime: SimDuration::from_secs(3),
            strategy: TimeoutStrategy::StatusAndConvert,
            ..Default::default()
        },
    );
    (w, aot)
}

#[test]
fn the_application_works_without_a_debugger() {
    let (mut w, aot) = build_app();
    w.spawn(0, "main", vec![]);
    w.run_until_idle(SimTime::from_secs(30));
    let out = w.console(0);
    assert_eq!(
        out,
        vec![
            "order#1 x2 = 200",
            "order#2 x4 = 400",
            "order#3 x6 = 540", // qty 6 gets the bulk price
            "grand total 1140",
        ]
    );
    assert_eq!(aot.stats().refreshes, 3);
}

#[test]
fn full_debugging_session_over_the_running_application() {
    let (mut w, aot) = build_app();
    w.debug_connect(&[0, 1, 2], false).unwrap();

    // Break inside the pricing service — on another node than the client.
    w.break_at_proc(1, "price").unwrap();
    w.spawn(0, "main", vec![]);

    // First order reaches pricing.
    let ev = w.wait_for_stop(SimDuration::from_secs(5)).unwrap();
    let DebugEvent::BreakpointHit {
        node, pid, proc, ..
    } = ev
    else {
        panic!("expected breakpoint, got {ev:?}")
    };
    assert_eq!(node.0, 1);
    assert_eq!(proc, "price");

    // The cross-node backtrace reaches back to the client's `main`.
    let chain = w.distributed_backtrace(1, pid).unwrap();
    let procs: Vec<&str> = chain.iter().map(|f| f.proc_name.as_str()).collect();
    assert!(procs.contains(&"main"), "{procs:?}");
    assert!(procs.contains(&"process_order"), "{procs:?}");
    assert_eq!(chain.last().unwrap().proc_name, "price");

    // Inspect and *change* the quantity the server was called with: the
    // first order (qty 2) gets priced as a bulk order.
    assert_eq!(w.inspect(1, pid, "qty").unwrap(), "2");
    w.set_variable(1, pid, "qty", WireValue::Int(5)).unwrap();

    // Sit at the breakpoint long past the TUID lifetime: the Figure 4
    // server must keep the client's TUID alive.
    w.run_for(SimDuration::from_secs(8));
    let bp = w.debugger().unwrap().breakpoints()[0].bp;
    w.clear_breakpoint(1, bp).unwrap();
    w.continue_process(1, pid).unwrap();
    w.debug_resume_all().unwrap();

    w.run_until_idle(w.now() + SimDuration::from_secs(60));
    let out = w.console(0);
    // First order got the tampered bulk price (90 × 2), later orders
    // normal; and no refresh was rejected.
    assert_eq!(
        out,
        vec![
            "order#1 x2 = 180",
            "order#2 x4 = 400",
            "order#3 x6 = 540",
            "grand total 1120",
        ],
        "aot stats: {:?}",
        aot.stats()
    );
    assert_eq!(aot.stats().refreshes, 3, "no refresh lost to the halt");
    assert!(aot.stats().extensions >= 1, "the halt forced an extension");
}

#[test]
fn print_operations_render_records_during_the_stop() {
    let (mut w, _aot) = build_app();
    w.debug_connect(&[0, 1, 2], false).unwrap();
    // Stop in the client right after the order record is built (the
    // `print(o)` line).
    w.break_at_line(0, 20).unwrap();
    w.spawn(0, "main", vec![]);
    let DebugEvent::BreakpointHit { pid, node, .. } =
        w.wait_for_stop(SimDuration::from_secs(5)).unwrap()
    else {
        panic!("expected breakpoint")
    };
    assert_eq!(node.0, 0);
    // Rendered via the user's print_order procedure, run in the user
    // program by the agent.
    assert_eq!(w.inspect(0, pid, "o").unwrap(), "order#1 x2 = 200");
    w.continue_process(0, pid).unwrap();
    let bp = w.debugger().unwrap().breakpoints()[0].bp;
    w.clear_breakpoint(0, bp).unwrap();
    w.debug_resume_all().unwrap();
    w.run_until_idle(w.now() + SimDuration::from_secs(60));
    assert_eq!(w.console(0).last().unwrap(), "grand total 1140");
}

#[test]
fn post_mortem_after_a_remote_fault() {
    // Make the pricing node divide by zero for one order.
    let bad_pricing = "\
price = proc (qty: int) returns (int)
 x: int := 100 / (qty - 4)
 return (x + 100)
end";
    let mut w = World::builder()
        .nodes(2)
        .program(FRONT_END_SIMPLE)
        .program_for(1, bad_pricing)
        .build()
        .unwrap();
    w.debug_connect(&[0, 1], false).unwrap();
    w.spawn(0, "simple", vec![Value::Int(4)]); // qty - 4 == 0 → fault
                                               // The server-side fault is consumed by the RPC runtime and propagated
                                               // to the exactly-once caller, whose agent reports it (§2: reliable in
                                               // the absence of node failures — a faulting callee is surfaced, not
                                               // masked).
    let ev = w.wait_for_stop(SimDuration::from_secs(5)).unwrap();
    let DebugEvent::ProcessFaulted {
        node,
        pid: client_pid,
        message,
        ..
    } = ev
    else {
        panic!("expected fault, got {ev:?}")
    };
    assert_eq!(node.0, 0, "the caller faults with the remote failure");
    assert!(message.contains("remote fault"), "{message}");
    assert!(message.contains("DivideByZero"), "{message}");
    // The dead *server* process is retained on node 1 for post-mortem
    // examination (§5.4) — find it and read its argument.
    let procs = w.debug_processes(1).unwrap();
    let dead = procs
        .iter()
        .find(|p| matches!(p.state, StateView::Faulted { .. }))
        .expect("faulted server process retained");
    assert_eq!(w.inspect(1, dead.pid, "qty").unwrap(), "4");
    // The client process is dead too.
    let cprocs = w.debug_processes(0).unwrap();
    let cdead = cprocs.iter().find(|p| p.pid == client_pid).unwrap();
    assert!(matches!(cdead.state, StateView::Faulted { .. }));
}

const FRONT_END_SIMPLE: &str = "\
price = proc (qty: int) returns (int)
 return (qty)
end
simple = proc (qty: int)
 p: int := call price(qty) at 1
 print(p)
end";

#[test]
fn maybe_diagnosis_inside_the_application() {
    let src = "\
audit = proc (n: int) returns (int)
 return (n)
end
simple = proc ()
 ok: bool := true
 r: int := 0
 ok, r := maybecall audit(7) at 1
 if ~ok then
  print(\"audit lost\")
 end
 sleep(600000)
end";
    let mut w = World::builder().nodes(2).program(src).build().unwrap();
    w.debug_connect(&[0, 1], false).unwrap();
    w.net_mut().drop_next(NodeId(1), NodeId(0), 1);
    w.spawn(0, "simple", vec![]);
    w.run_for(SimDuration::from_millis(300));
    assert_eq!(w.console(0), vec!["audit lost"]);
    let (call_id, _) = *w.recent_calls(0).unwrap().last().unwrap();
    assert_eq!(
        w.diagnose_maybe_failure(1, call_id).unwrap(),
        MaybeDiagnosis::LostReply
    );
}

#[test]
fn deterministic_replay_same_seed_same_world() {
    let run = |seed: u64| {
        let (mut w, _) = {
            let mut w = World::builder()
                .nodes(4)
                .program(FRONT_END)
                .program_for(1, PRICING)
                .program_for(2, FILE_SERVER_SOURCE)
                .seed(seed)
                .build()
                .unwrap();
            let aot = AotMan::install(&mut w, 3, AotConfig::default());
            (w, aot)
        };
        w.spawn(0, "main", vec![]);
        w.run_until_idle(SimTime::from_secs(30));
        (w.console(0), w.now())
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b, "identical seeds give identical histories");
}

#[test]
fn externs_shared_by_client_and_services_typecheck() {
    // CLIENT_EXTERNS must stay in sync with the file server's procedures.
    let merged = format!("{CLIENT_EXTERNS}\nmain = proc ()\n print(\"ok\")\nend");
    let mut w = World::builder()
        .nodes(2)
        .program(&merged)
        .program_for(1, FILE_SERVER_SOURCE)
        .build()
        .unwrap();
    w.spawn(0, "main", vec![]);
    w.run_until_idle(SimTime::from_secs(2));
    assert_eq!(w.console(0), vec!["ok"]);
}
