//! Quiescence-aware pump determinism gate.
//!
//! The activity-index pump ([`World`] default) may skip nodes and
//! endpoints with no pending work, but skipping is only admissible while
//! it is invisible: every observable artifact — the JSONL trace, folded
//! flame stacks, the metrics inventory, the record/replay artifact, and
//! watch trips with their sync indices — must be byte-identical to the
//! full-scan reference pump (`World::set_reference_pump`). These tests
//! pin exactly that, across fixed rich scenarios and random seed ×
//! topology × thread-count property cases, and assert the index
//! invariants (`World::debug_validate_index`) across the mutation paths
//! that change a node's schedule: spawns, halts, resumes,
//! `force_runnable`, and the `node_mut` escape hatch.

use pilgrim::{capture, NetworkConfig, NodeConfig, SimDuration, SimTime, Value, World};
use pilgrim_mayflower::Pid;
use pilgrim_sim::check::{check_n, ensure, int_range, u64_range, zip_cases, Case, Gen};
use pilgrim_sim::DetRng;

const FANOUT_MAIN: &str = "\
ping = proc (x: int) returns (int)
 fail(\"servers implement ping\")
end

main = proc (rounds: int)
 total: int := 0
 for i: int := 1 to rounds do
  total := total + call ping(i) at 1
  total := total + call ping(i * 10) at 2
 end
 print(\"total \" || int$unparse(total))
end";

const SERVER: &str = "\
ping = proc (x: int) returns (int)
 print(\"serve \" || int$unparse(x) || \" on \" || int$unparse(my_node()))
 return (x * 2)
end";

/// The everything-on scenario from the parallel gate, parameterised over
/// the pump implementation: RPC fan-out, profiling, a debugger session
/// with a mid-run halt/resume, and a tripping watchpoint.
fn rich_scenario(threads: usize, reference_pump: bool) -> World {
    let node_cfg = NodeConfig {
        profile_vm: true,
        ..NodeConfig::default()
    };
    let mut w = World::builder()
        .nodes(3)
        .program(FANOUT_MAIN)
        .program_for(1, SERVER)
        .program_for(2, SERVER)
        .node_config(node_cfg)
        .seed(0xda7a)
        .step_threads(threads)
        .build()
        .expect("rich scenario builds");
    w.set_reference_pump(reference_pump);
    w.debug_connect(&[0, 1, 2], false).unwrap();
    w.arm_watch("rpc.completed > 2").unwrap();
    w.spawn(0, "main", vec![Value::Int(3)]);
    w.run_until_idle(SimTime::from_secs(30));
    let _ = w.debug_halt_all(0);
    w.run_for(SimDuration::from_millis(5));
    let _ = w.debug_resume_all();
    w.run_until_idle(SimTime::from_secs(60));
    w
}

/// Skip-quiescent and full-scan pumps must produce byte-identical
/// artifacts, serially and on the worker pool.
#[test]
fn pump_twin_rich_scenario() {
    for threads in [1, 4] {
        let skip = capture(&rich_scenario(threads, false));
        let reference = capture(&rich_scenario(threads, true));
        assert_eq!(
            skip.trace, reference.trace,
            "trace diverged at {threads} threads"
        );
        assert_eq!(skip.folded_stacks, reference.folded_stacks);
        assert_eq!(skip.metrics, reference.metrics);
        assert_eq!(skip.artifact, reference.artifact);
        assert_eq!(skip.watch_trips, reference.watch_trips);
        assert!(
            !skip.watch_trips.is_empty(),
            "scenario must trip its watchpoint or the trip comparison is vacuous"
        );
    }
}

/// A spawn onto a node with nothing else to do leaves a `ProcCreated`
/// outcall behind; the skip pump must still step that node next window so
/// the agent sees the birth — and the process must actually run.
#[test]
fn spawn_on_quiescent_node_is_not_skipped() {
    let mut w = World::builder()
        .nodes(3)
        .program("main = proc ()\n print(\"ran \" || int$unparse(my_node()))\nend")
        .seed(7)
        .build()
        .unwrap();
    // Let the world go fully idle first, so node 2's only claim to a step
    // is the pending spawn itself.
    w.run_until_idle(SimTime::from_secs(1));
    w.spawn(2, "main", vec![]);
    w.run_until_idle(SimTime::from_secs(2));
    assert_eq!(w.console(2), vec!["ran 2".to_string()]);
    w.debug_validate_index();
}

/// After every public run call, skipped nodes' clocks must have settled
/// to the world clock — digests and reports read them directly.
#[test]
fn clocks_settle_after_every_run_call() {
    let mut w = World::builder()
        .nodes(4)
        .program(FANOUT_MAIN)
        .program_for(1, SERVER)
        .program_for(2, SERVER)
        .seed(11)
        .build()
        .unwrap();
    w.spawn(0, "main", vec![Value::Int(2)]);
    w.run_for(SimDuration::from_millis(7));
    for i in 0..4 {
        assert_eq!(w.node(i).clock(), w.now(), "node {i} clock lagged");
    }
    w.run_until_idle(SimTime::from_secs(30));
    for i in 0..4 {
        assert_eq!(w.node(i).clock(), w.now(), "node {i} clock lagged at idle");
    }
    w.debug_validate_index();
}

/// The index survives every schedule-changing mutation path: debugger
/// halts and resumes, `force_runnable`, and arbitrary churn through the
/// `node_mut` escape hatch (which invalidates and forces a rebuild).
#[test]
fn index_stays_valid_through_debug_churn() {
    let mut w = World::builder()
        .nodes(3)
        .program(FANOUT_MAIN)
        .program_for(1, SERVER)
        .program_for(2, SERVER)
        .seed(0xc4)
        .build()
        .unwrap();
    w.debug_connect(&[0, 1, 2], false).unwrap();
    w.spawn(0, "main", vec![Value::Int(4)]);
    w.run_for(SimDuration::from_millis(4));
    w.debug_validate_index();
    let _ = w.debug_halt_all(0);
    w.debug_validate_index();
    w.run_for(SimDuration::from_millis(5));
    w.debug_validate_index();
    let _ = w.debug_resume_all();
    w.debug_validate_index();
    // Unindexed churn: halt a process behind the world's back, pump, and
    // demand the rebuilt index agrees with reality again.
    w.node_mut(0).halt_all();
    w.run_for(SimDuration::from_millis(2));
    w.debug_validate_index();
    w.node_mut(0).resume_all();
    w.node_mut(0).force_runnable(Pid(1));
    w.run_for(SimDuration::from_millis(2));
    w.debug_validate_index();
    w.run_until_idle(SimTime::from_secs(30));
    w.debug_validate_index();
}

/// The E4 ablation (`freeze_timeouts_on_halt = false`) burns halted
/// processes' timeouts, which only the full scan advances — the world
/// must quietly route it to the reference pump and still behave.
#[test]
fn unfrozen_timeout_mode_matches_reference() {
    let scenario = |reference: bool| {
        let cfg = NodeConfig {
            freeze_timeouts_on_halt: false,
            ..NodeConfig::default()
        };
        let mut w = World::builder()
            .nodes(2)
            .program(FANOUT_MAIN)
            .program_for(1, SERVER)
            .node_config(cfg)
            .seed(0xe4)
            .build()
            .unwrap();
        w.set_reference_pump(reference);
        w.debug_connect(&[0, 1], false).unwrap();
        w.spawn(0, "main", vec![Value::Int(2)]);
        w.run_for(SimDuration::from_millis(3));
        let _ = w.debug_halt_all(0);
        w.run_for(SimDuration::from_millis(10));
        let _ = w.debug_resume_all();
        w.run_until_idle(SimTime::from_secs(30));
        w
    };
    let implicit = capture(&scenario(false));
    let explicit = capture(&scenario(true));
    assert_eq!(implicit.trace, explicit.trace);
    assert_eq!(implicit.artifact, explicit.artifact);
}

// ---------------------------------------------------------------------
// Property: the two pumps agree for random scenarios.
// ---------------------------------------------------------------------

/// One random scenario: topology size, master seed, work amount, worker
/// thread count, packet loss, and whether a debugger halts mid-run.
#[derive(Debug, Clone)]
struct Scenario {
    nodes: i64,
    seed: u64,
    iters: i64,
    threads: i64,
    lossy: bool,
    with_debug: bool,
}

struct ScenarioGen;

/// The zipped tuple shape [`ScenarioGen`] assembles before mapping into a
/// [`Scenario`].
type RawScenario = ((i64, u64), (i64, (i64, (i64, i64))));

impl Gen for ScenarioGen {
    type Value = Scenario;
    fn generate(&self, rng: &mut DetRng) -> Case<Scenario> {
        let nodes = int_range(1, 4).generate(rng);
        let seed = u64_range(0, u64::MAX).generate(rng);
        let iters = int_range(1, 5).generate(rng);
        let threads = int_range(1, 4).generate(rng);
        let lossy = int_range(0, 1).generate(rng);
        let debug = int_range(0, 1).generate(rng);
        let pair = zip_cases(
            zip_cases(nodes, seed),
            zip_cases(iters, zip_cases(threads, zip_cases(lossy, debug))),
        );
        pair.map(std::rc::Rc::new(
            |((n, s), (i, (t, (l, d)))): &RawScenario| Scenario {
                nodes: *n,
                seed: *s,
                iters: *i,
                threads: *t,
                lossy: *l == 1,
                with_debug: *d == 1,
            },
        ))
    }
}

fn run_scenario(sc: &Scenario, reference_pump: bool) -> World {
    let local = "\
main = proc (n: int)
 total: int := 0
 for i: int := 1 to n do
  total := total + i
 end
 print(int$unparse(total))
end";
    let remote_main = "\
ping = proc (x: int) returns (int)
 fail(\"only node 1 implements ping\")
end

main = proc (n: int)
 r: int := call ping(n) at 1
 print(int$unparse(r))
end";
    let mut b = World::builder()
        .nodes(sc.nodes as u32)
        .seed(sc.seed)
        .step_threads(sc.threads as usize)
        .program(if sc.nodes >= 2 { remote_main } else { local });
    if sc.nodes >= 2 {
        b = b.program_for(1, SERVER);
    }
    if sc.lossy {
        b = b.network(NetworkConfig {
            p_silent_loss: 0.05,
            ..NetworkConfig::default()
        });
    }
    let mut w = b.build().expect("scenario builds");
    w.set_reference_pump(reference_pump);
    if sc.with_debug {
        let all: Vec<u32> = (0..sc.nodes as u32).collect();
        let _ = w.debug_connect(&all, false);
    }
    w.spawn(0, "main", vec![Value::Int(sc.iters)]);
    if sc.with_debug {
        w.run_for(SimDuration::from_millis(3));
        let _ = w.debug_halt_all(0);
        w.run_for(SimDuration::from_millis(5));
        let _ = w.debug_resume_all();
    }
    w.run_until_idle(SimTime::from_secs(30));
    w.debug_validate_index();
    w
}

#[test]
fn prop_skip_pump_matches_reference() {
    check_n("prop_skip_pump_matches_reference", 20, &ScenarioGen, |sc| {
        let skip = capture(&run_scenario(sc, false));
        let reference = capture(&run_scenario(sc, true));
        ensure(skip.trace == reference.trace, "trace diverged")?;
        ensure(
            skip.folded_stacks == reference.folded_stacks,
            "folded stacks diverged",
        )?;
        ensure(skip.metrics == reference.metrics, "metrics diverged")?;
        ensure(skip.artifact == reference.artifact, "artifact diverged")?;
        ensure(
            skip.watch_trips == reference.watch_trips,
            "watch trips diverged",
        )
    });
}
