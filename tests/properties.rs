//! Property-based tests over the whole stack: compiler robustness,
//! arithmetic fidelity against a Rust reference, marshalling through real
//! RPC, determinism, and time-consistency invariants.

use pilgrim::{SimTime, Value, World};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Compiler robustness: arbitrary input must never panic.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compiler_never_panics_on_arbitrary_text(src in "\\PC{0,200}") {
        let _ = pilgrim::compile(&src);
    }

    #[test]
    fn compiler_never_panics_on_keyword_soup(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "proc", "end", "if", "then", "else", "while", "do", "return",
                "fork", "call", "at", "maybecall", "int", "bool", "string",
                "sem", "record", "array", "own", "extern", ":=", "(", ")",
                "[", "]", "x", "main", "=", "+", "$", "{", "}", "\n", "1",
                "\"s\"", ",", ":",
            ]),
            0..60,
        )
    ) {
        let src = words.join(" ");
        let _ = pilgrim::compile(&src);
    }
}

// ---------------------------------------------------------------------
// Arithmetic fidelity: CCLU expressions agree with a Rust reference.
// ---------------------------------------------------------------------

/// A tiny expression AST we can both render to CCLU and evaluate in Rust.
#[derive(Debug, Clone)]
enum E {
    N(i64),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Mod(Box<E>, Box<E>),
    Neg(Box<E>),
}

impl E {
    fn render(&self) -> String {
        match self {
            E::N(v) => {
                if *v < 0 {
                    format!("(0 - {})", -v)
                } else {
                    v.to_string()
                }
            }
            E::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            E::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            E::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            E::Div(a, b) => format!("({} / {})", a.render(), b.render()),
            E::Mod(a, b) => format!("({} // {})", a.render(), b.render()),
            E::Neg(a) => format!("(-{})", a.render()),
        }
    }

    /// Rust-reference evaluation with the VM's semantics (wrapping ops,
    /// `None` = division by zero fault).
    fn eval(&self) -> Option<i64> {
        Some(match self {
            E::N(v) => *v,
            E::Add(a, b) => a.eval()?.wrapping_add(b.eval()?),
            E::Sub(a, b) => a.eval()?.wrapping_sub(b.eval()?),
            E::Mul(a, b) => a.eval()?.wrapping_mul(b.eval()?),
            E::Div(a, b) => {
                let (x, y) = (a.eval()?, b.eval()?);
                if y == 0 {
                    return None;
                }
                x.wrapping_div(y)
            }
            E::Mod(a, b) => {
                let (x, y) = (a.eval()?, b.eval()?);
                if y == 0 {
                    return None;
                }
                x.wrapping_rem(y)
            }
            E::Neg(a) => a.eval()?.wrapping_neg(),
        })
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = (-1000i64..1000).prop_map(E::N);
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mod(Box::new(a), Box::new(b))),
            inner.prop_map(|a| E::Neg(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn vm_arithmetic_matches_rust_reference(e in arb_expr()) {
        let src = format!("main = proc ()\n print({})\nend", e.render());
        let mut w = World::builder()
            .nodes(1)
            .program(&src)
            .debugger(false)
            .build()
            .expect("generated program compiles");
        w.spawn(0, "main", vec![]);
        w.run_until_idle(SimTime::from_secs(60));
        match e.eval() {
            Some(v) => prop_assert_eq!(w.console(0), vec![v.to_string()]),
            None => prop_assert!(w.console(0).is_empty(), "division by zero must fault"),
        }
    }
}

// ---------------------------------------------------------------------
// Marshalling through a real RPC round trip.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn strings_round_trip_through_rpc(s in "[a-zA-Z0-9 _.,!?-]{0,300}") {
        let src = "\
echo = proc (s: string) returns (string)
 return (s)
end
main = proc (payload: string)
 r: string := call echo(payload) at 1
 if r = payload then
  print(\"match\")
 else
  print(\"MISMATCH\")
 end
end";
        let mut w = World::builder().nodes(2).program(src).debugger(false).build().unwrap();
        w.spawn(0, "main", vec![Value::Str(s.as_str().into())]);
        w.run_until_idle(SimTime::from_secs(60));
        prop_assert_eq!(w.console(0), vec!["match".to_string()]);
    }

    #[test]
    fn int_arrays_round_trip_through_rpc(xs in prop::collection::vec(-10000i64..10000, 0..50)) {
        let src = "\
total = proc (xs: array[int]) returns (int, int)
 t: int := 0
 n: int := len(xs)
 for i: int := 0 to n - 1 do
  t := t + xs[i]
 end
 return (t, n)
end
main = proc (xs: array[int])
 t: int := 0
 n: int := 0
 t, n := call total(xs) at 1
 print(t)
 print(n)
end";
        let mut w = World::builder().nodes(2).program(src).debugger(false).build().unwrap();
        let arr = {
            use pilgrim_cclu::{HeapObject, Value as V};
            let items: Vec<V> = xs.iter().map(|v| V::Int(*v)).collect();
            V::Ref(w.node_mut(0).heap_mut().alloc(HeapObject::Array(items)))
        };
        w.spawn(0, "main", vec![arr]);
        w.run_until_idle(SimTime::from_secs(60));
        let sum: i64 = xs.iter().sum();
        prop_assert_eq!(
            w.console(0),
            vec![sum.to_string(), xs.len().to_string()]
        );
    }
}

// ---------------------------------------------------------------------
// Determinism and time consistency.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn worlds_are_deterministic_under_loss(seed in 0u64..1000) {
        let run = || {
            let mut w = World::builder()
                .nodes(2)
                .program(
                    "pong = proc (n: int) returns (int)\n return (n)\nend\n\
                     main = proc ()\n\
                     for i: int := 1 to 10 do\n\
                      ok: bool := true\n r: int := 0\n\
                      ok, r := maybecall pong(i) at 1\n\
                      if ok then\n print(r)\n else\n print(0 - i)\n end\n\
                     end\nend",
                )
                .network(pilgrim::NetworkConfig {
                    p_silent_loss: 0.3,
                    seed,
                    ..Default::default()
                })
                .debugger(false)
                .build()
                .unwrap();
            w.spawn(0, "main", vec![]);
            w.run_until_idle(SimTime::from_secs(120));
            (w.console(0), w.now())
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn logical_time_hides_halts_of_any_length(halt_ms in 100u64..8000) {
        let mut w = World::builder()
            .nodes(1)
            .program(
                "main = proc ()\n\
                 a: int := now()\n\
                 sleep(300)\n\
                 b: int := now()\n\
                 print(int$unparse(b - a))\nend",
            )
            .build()
            .unwrap();
        w.debug_connect(&[0], false).unwrap();
        w.spawn(0, "main", vec![]);
        // Halt somewhere inside the sleep.
        w.run_for(pilgrim::SimDuration::from_millis(100));
        w.debug_halt_all(0).unwrap();
        w.run_for(pilgrim::SimDuration::from_millis(halt_ms));
        w.debug_resume_all().unwrap();
        w.run_until_idle(w.now() + pilgrim::SimDuration::from_secs(30));
        let observed: i64 = w.console(0)[0].parse().unwrap();
        // The program must observe ~300 ms regardless of the halt length.
        prop_assert!((300..330).contains(&observed), "observed {observed}ms");
    }
}
