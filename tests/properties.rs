//! Property-based tests over the whole stack: compiler robustness,
//! arithmetic fidelity against a Rust reference, marshalling through real
//! RPC, determinism, and time-consistency invariants. Driven by the
//! in-repo `pilgrim_sim::check` harness; a failure prints a
//! `PILGRIM_CHECK_SEED` that replays it exactly.

use pilgrim::{SimTime, Value, World};
use pilgrim_sim::check::{
    check_n, choice, ensure, ensure_eq, int_range, map, string_of, u64_range, vecs, zip_cases,
    Case, Gen,
};
use pilgrim_sim::DetRng;
use std::rc::Rc;

// ---------------------------------------------------------------------
// Compiler robustness: arbitrary input must never panic.
// ---------------------------------------------------------------------

#[test]
fn compiler_never_panics_on_arbitrary_text() {
    // Printable ASCII plus a spread of multi-byte characters, standing in
    // for the old `\PC{0,200}` (any printable char) strategy.
    let mut alphabet: String = (b' '..=b'~').map(char::from).collect();
    alphabet.push_str("äßπ€中日🦀\u{2028}");
    check_n(
        "compiler_never_panics_on_arbitrary_text",
        256,
        &string_of(&alphabet, 200),
        |src| {
            let _ = pilgrim::compile(src);
            Ok(())
        },
    );
}

#[test]
fn compiler_never_panics_on_keyword_soup() {
    let words = vec![
        "proc",
        "end",
        "if",
        "then",
        "else",
        "while",
        "do",
        "return",
        "fork",
        "call",
        "at",
        "maybecall",
        "int",
        "bool",
        "string",
        "sem",
        "record",
        "array",
        "own",
        "extern",
        ":=",
        "(",
        ")",
        "[",
        "]",
        "x",
        "main",
        "=",
        "+",
        "$",
        "{",
        "}",
        "\n",
        "1",
        "\"s\"",
        ",",
        ":",
    ];
    check_n(
        "compiler_never_panics_on_keyword_soup",
        256,
        &map(vecs(choice(words), 60), |ws: &Vec<&str>| ws.join(" ")),
        |src| {
            let _ = pilgrim::compile(src);
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Arithmetic fidelity: CCLU expressions agree with a Rust reference.
// ---------------------------------------------------------------------

/// A tiny expression AST we can both render to CCLU and evaluate in Rust.
#[derive(Debug, Clone)]
enum E {
    N(i64),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Mod(Box<E>, Box<E>),
    Neg(Box<E>),
}

impl E {
    fn render(&self) -> String {
        match self {
            E::N(v) => {
                if *v < 0 {
                    format!("(0 - {})", -v)
                } else {
                    v.to_string()
                }
            }
            E::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            E::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            E::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            E::Div(a, b) => format!("({} / {})", a.render(), b.render()),
            E::Mod(a, b) => format!("({} // {})", a.render(), b.render()),
            E::Neg(a) => format!("(-{})", a.render()),
        }
    }

    /// Rust-reference evaluation with the VM's semantics (wrapping ops,
    /// `None` = division by zero fault).
    fn eval(&self) -> Option<i64> {
        Some(match self {
            E::N(v) => *v,
            E::Add(a, b) => a.eval()?.wrapping_add(b.eval()?),
            E::Sub(a, b) => a.eval()?.wrapping_sub(b.eval()?),
            E::Mul(a, b) => a.eval()?.wrapping_mul(b.eval()?),
            E::Div(a, b) => {
                let (x, y) = (a.eval()?, b.eval()?);
                if y == 0 {
                    return None;
                }
                x.wrapping_div(y)
            }
            E::Mod(a, b) => {
                let (x, y) = (a.eval()?, b.eval()?);
                if y == 0 {
                    return None;
                }
                x.wrapping_rem(y)
            }
            E::Neg(a) => a.eval()?.wrapping_neg(),
        })
    }
}

/// Adds extra shrink candidates in front of a case's own.
fn with_extra_shrinks<T: Clone + 'static>(case: Case<T>, extra: Vec<Case<T>>) -> Case<T> {
    let value = case.value.clone();
    Case::with_shrinks(value, move || {
        extra.iter().cloned().chain(case.shrink()).collect()
    })
}

/// Random arithmetic expressions up to depth 4, shrinking a composite to
/// either operand (then its leaves toward zero) — a structural port of
/// the old `prop_recursive` strategy.
#[derive(Debug, Clone, Copy)]
struct ExprGen;

fn expr_case(rng: &mut DetRng, depth: u32) -> Case<E> {
    let leafy = depth == 0 || rng.chance(0.3);
    if leafy {
        return int_range(-1000, 1000)
            .generate(rng)
            .map(Rc::new(|v: &i64| E::N(*v)));
    }
    if rng.below(7) == 6 {
        let a = expr_case(rng, depth - 1);
        let mapped = a.map(Rc::new(|a: &E| E::Neg(Box::new(a.clone()))));
        return with_extra_shrinks(mapped, vec![a]);
    }
    let a = expr_case(rng, depth - 1);
    let b = expr_case(rng, depth - 1);
    let op = rng.below(5);
    let build = move |(a, b): &(E, E)| -> E {
        let (a, b) = (Box::new(a.clone()), Box::new(b.clone()));
        match op {
            0 => E::Add(a, b),
            1 => E::Sub(a, b),
            2 => E::Mul(a, b),
            3 => E::Div(a, b),
            _ => E::Mod(a, b),
        }
    };
    let mapped = zip_cases(a.clone(), b.clone()).map(Rc::new(build));
    with_extra_shrinks(mapped, vec![a, b])
}

impl Gen for ExprGen {
    type Value = E;
    fn generate(&self, rng: &mut DetRng) -> Case<E> {
        expr_case(rng, 4)
    }
}

#[test]
fn vm_arithmetic_matches_rust_reference() {
    check_n("vm_arithmetic_matches_rust_reference", 48, &ExprGen, |e| {
        let src = format!("main = proc ()\n print({})\nend", e.render());
        let mut w = World::builder()
            .nodes(1)
            .program(&src)
            .debugger(false)
            .build()
            .map_err(|err| format!("generated program rejected: {err}"))?;
        w.spawn(0, "main", vec![]);
        w.run_until_idle(SimTime::from_secs(60));
        match e.eval() {
            Some(v) => ensure_eq(w.console(0), vec![v.to_string()]),
            None => ensure(
                w.console(0).is_empty(),
                "division by zero must fault".to_string(),
            ),
        }
    });
}

// ---------------------------------------------------------------------
// Marshalling through a real RPC round trip.
// ---------------------------------------------------------------------

#[test]
fn strings_round_trip_through_rpc() {
    let alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _.,!?-";
    check_n(
        "strings_round_trip_through_rpc",
        24,
        &string_of(alphabet, 300),
        |s| {
            let src = "\
echo = proc (s: string) returns (string)
 return (s)
end
main = proc (payload: string)
 r: string := call echo(payload) at 1
 if r = payload then
  print(\"match\")
 else
  print(\"MISMATCH\")
 end
end";
            let mut w = World::builder()
                .nodes(2)
                .program(src)
                .debugger(false)
                .build()
                .unwrap();
            w.spawn(0, "main", vec![Value::Str(s.as_str().into())]);
            w.run_until_idle(SimTime::from_secs(60));
            ensure_eq(w.console(0), vec!["match".to_string()])
        },
    );
}

#[test]
fn int_arrays_round_trip_through_rpc() {
    check_n(
        "int_arrays_round_trip_through_rpc",
        24,
        &vecs(int_range(-10_000, 10_000), 50),
        |xs| {
            let src = "\
total = proc (xs: array[int]) returns (int, int)
 t: int := 0
 n: int := len(xs)
 for i: int := 0 to n - 1 do
  t := t + xs[i]
 end
 return (t, n)
end
main = proc (xs: array[int])
 t: int := 0
 n: int := 0
 t, n := call total(xs) at 1
 print(t)
 print(n)
end";
            let mut w = World::builder()
                .nodes(2)
                .program(src)
                .debugger(false)
                .build()
                .unwrap();
            let arr = {
                use pilgrim_cclu::{HeapObject, Value as V};
                let items: Vec<V> = xs.iter().map(|v| V::Int(*v)).collect();
                V::Ref(w.node_mut(0).heap_mut().alloc(HeapObject::Array(items)))
            };
            w.spawn(0, "main", vec![arr]);
            w.run_until_idle(SimTime::from_secs(60));
            let sum: i64 = xs.iter().sum();
            ensure_eq(w.console(0), vec![sum.to_string(), xs.len().to_string()])
        },
    );
}

// ---------------------------------------------------------------------
// Span sampling: a sampled trace is a strict causal subset.
// ---------------------------------------------------------------------

#[test]
fn sampled_causal_graph_is_a_strict_subset_of_the_full_trace() {
    // Twin worlds differing only in the head-based sample rate must
    // agree on everything the sampled run keeps: every surviving span
    // exists in the full run with a byte-identical profile, parents
    // survive with their children (causal completeness), and sampling
    // actually thins the trace (strictness).
    const MAIN: &str = "\
ping = proc (x: int) returns (int)
 fail(\"servers implement ping\")
end
relay = proc (x: int) returns (int)
 fail(\"node 2 implements relay\")
end
main = proc (rounds: int)
 total: int := 0
 for i: int := 1 to rounds do
  total := total + call ping(i) at 1
  total := total + call relay(i) at 2
 end
 print(int$unparse(total))
end";
    const SERVER: &str = "\
ping = proc (x: int) returns (int)
 return (x * 2)
end";
    const RELAY: &str = "\
ping = proc (x: int) returns (int)
 fail(\"node 1 implements ping\")
end
relay = proc (x: int) returns (int)
 r: int := call ping(x) at 1
 return (r + 1)
end";
    check_n(
        "sampled_causal_graph_is_a_strict_subset_of_the_full_trace",
        8,
        &u64_range(0, 10_000),
        |seed| {
            let rate = 2 + (*seed % 2) as u32;
            let run = |sample: u32| {
                let mut w = World::builder()
                    .nodes(3)
                    .program(MAIN)
                    .program_for(1, SERVER)
                    .program_for(2, RELAY)
                    .network(pilgrim::NetworkConfig {
                        p_silent_loss: 0.05,
                        seed: *seed,
                        ..Default::default()
                    })
                    .seed(*seed)
                    .debugger(false)
                    .trace_sample(sample)
                    .build()
                    .unwrap();
                w.spawn(0, "main", vec![Value::Int(16)]);
                w.run_until_idle(SimTime::from_secs(300));
                (pilgrim::CausalGraph::from_events(&w.tracer().events()), w)
            };
            let (full, full_world) = run(0);
            let (sampled, sampled_world) = run(rate);
            ensure_eq(full_world.console(0), sampled_world.console(0))?;

            use std::collections::HashMap;
            let by_id: HashMap<u64, &pilgrim::SpanProfile> =
                full.spans().iter().map(|p| (p.span, p)).collect();
            let kept: Vec<u64> = sampled.spans().iter().map(|p| p.span).collect();
            ensure(
                !kept.is_empty() && kept.len() < full.spans().len(),
                format!(
                    "rate {rate} must thin the trace: kept {} of {} spans",
                    kept.len(),
                    full.spans().len()
                ),
            )?;
            for p in sampled.spans() {
                let twin = by_id.get(&p.span).ok_or(format!(
                    "span {} survived sampling but never ran in the full world",
                    p.span
                ))?;
                ensure_eq(p.render(), twin.render())?;
                ensure(
                    p.parent == 0 || kept.contains(&p.parent),
                    format!("span {} kept without its parent {}", p.span, p.parent),
                )?;
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Determinism and time consistency.
// ---------------------------------------------------------------------

#[test]
fn worlds_are_deterministic_under_loss() {
    check_n(
        "worlds_are_deterministic_under_loss",
        12,
        &u64_range(0, 1000),
        |seed| {
            let run = || {
                let mut w = World::builder()
                    .nodes(2)
                    .program(
                        "pong = proc (n: int) returns (int)\n return (n)\nend\n\
                         main = proc ()\n\
                         for i: int := 1 to 10 do\n\
                          ok: bool := true\n r: int := 0\n\
                          ok, r := maybecall pong(i) at 1\n\
                          if ok then\n print(r)\n else\n print(0 - i)\n end\n\
                         end\nend",
                    )
                    .network(pilgrim::NetworkConfig {
                        p_silent_loss: 0.3,
                        seed: *seed,
                        ..Default::default()
                    })
                    .debugger(false)
                    .build()
                    .unwrap();
                w.spawn(0, "main", vec![]);
                w.run_until_idle(SimTime::from_secs(120));
                (w.console(0), w.now())
            };
            ensure_eq(run(), run())
        },
    );
}

#[test]
fn logical_time_hides_halts_of_any_length() {
    check_n(
        "logical_time_hides_halts_of_any_length",
        12,
        &u64_range(100, 8000),
        |halt_ms| {
            let mut w = World::builder()
                .nodes(1)
                .program(
                    "main = proc ()\n\
                     a: int := now()\n\
                     sleep(300)\n\
                     b: int := now()\n\
                     print(int$unparse(b - a))\nend",
                )
                .build()
                .unwrap();
            w.debug_connect(&[0], false).unwrap();
            w.spawn(0, "main", vec![]);
            // Halt somewhere inside the sleep.
            w.run_for(pilgrim::SimDuration::from_millis(100));
            w.debug_halt_all(0).unwrap();
            w.run_for(pilgrim::SimDuration::from_millis(*halt_ms));
            w.debug_resume_all().unwrap();
            w.run_until_idle(w.now() + pilgrim::SimDuration::from_secs(30));
            let observed: i64 = w.console(0)[0].parse().unwrap();
            // The program must observe ~300 ms regardless of the halt length.
            ensure(
                (300..330).contains(&observed),
                format!("observed {observed}ms"),
            )
        },
    );
}
