//! Gates for the traffic layer: scenario parsing is hostile-input safe,
//! loaded multi-segment worlds are deterministic (twin-run serial vs
//! parallel, twice-run byte-equality), partitions scheduled in the
//! recipe actually cut and heal, the recorded artifact replays
//! divergence-free through the services setup installer, and the driver's
//! `set_link_up` journals like any other stimulus.

use pilgrim::{twin_run, Artifact, SimTime, Stimulus};
use pilgrim_services::{
    replay_load_artifact, run_scenario, run_scenario_threads, Scenario, FS_NODE, NS_NODE,
};

/// A small partitioned star scenario, heavy enough to cross bridges and
/// lose packets, light enough for a unit-test budget. The 2 s cut
/// exceeds the RPC retry ladder (4 × 200 ms), so failures must appear.
const PARTITIONED: &str = r#"
name = "gate"
seed = 97
topology = "star"
segments = 3
client_nodes = 6
clients = 300
arrivals = 300
rate = 60
mix = "lookup:4,read:3,write:2,auth:1"
loss = "1%"
link_jitter = 50us
partition = "at=1s heal=3s link=0:1"
trace = "rpc"
"#;

fn scenario() -> Scenario {
    Scenario::parse(PARTITIONED).expect("gate scenario parses")
}

#[test]
fn scenario_parser_rejects_hostile_files() {
    // The full hostile matrix lives in the services unit tests; this
    // gate spot-checks that errors carry line numbers and that a typo'd
    // gate key can never silently pass CI.
    let err = Scenario::parse("min_rsp = 50").expect_err("typo must not parse");
    assert!(err.contains("line 1"), "{err}");
    assert!(err.contains("unknown key"), "{err}");
    let err = Scenario::parse("rate = 9999999999").expect_err("absurd rate");
    assert!(err.contains("rate"), "{err}");
}

#[test]
fn loaded_run_is_twice_byte_identical() {
    let a = run_scenario(&scenario()).expect("runs");
    let b = run_scenario(&scenario()).expect("runs");
    assert_eq!(a.report, b.report, "reports must be byte-identical");
    assert_eq!(a.world.trace_jsonl(), b.world.trace_jsonl());
    assert_eq!(
        a.world.record().render(),
        b.world.record().render(),
        "whole artifacts must be byte-identical"
    );
}

#[test]
fn partition_cuts_then_heals() {
    let out = run_scenario(&scenario()).expect("runs");
    assert!(out.drained, "world must drain after the heal");
    let m = out.world.metrics();
    let failed = m.counter_value("rpc.failed").unwrap_or(0);
    let completed = m.counter_value("rpc.completed").unwrap_or(0);
    let bridge_lost = m.counter_value("net.bridge_lost").unwrap_or(0);
    assert!(failed > 0, "a 2 s cut must outlast the retry ladder");
    assert!(bridge_lost > 0, "cut packets are bridge losses");
    assert!(
        completed > failed,
        "most traffic (other arms + outside the window) must complete: \
         {completed} completed vs {failed} failed"
    );
}

#[test]
fn twin_run_serial_vs_parallel_under_load() {
    twin_run("load_gate", |threads| {
        let out = run_scenario_threads(&scenario(), threads).expect("runs");
        out.world
    });
}

#[test]
fn recorded_load_artifact_replays_byte_identically() {
    let out = run_scenario(&scenario()).expect("runs");
    let rendered = out.world.record().render();
    // Round-trip through text, as CI does with a file on disk.
    let artifact = Artifact::parse(&rendered).expect("parses back");
    for threads in [1usize, 4] {
        let report = replay_load_artifact(&artifact, threads).expect("replays");
        assert!(
            report.divergence.is_none(),
            "at {threads} threads: {:?}",
            report.divergence
        );
        assert!(report.byte_identical, "at {threads} threads");
    }
}

#[test]
fn set_link_up_journals_and_replays() {
    let run = || {
        let mut sc = scenario();
        sc.partitions.clear(); // drive the cut manually instead
        let mut w = pilgrim_services::build_load_world(&sc).expect("builds");
        w.spawn(
            pilgrim_services::FIRST_CLIENT_NODE,
            "op_lookup",
            vec![pilgrim::Value::Int(NS_NODE as i64)],
        );
        w.run_until(SimTime::from_millis(500));
        w.set_link_up(0, 1, false);
        w.spawn(
            pilgrim_services::FIRST_CLIENT_NODE,
            "op_lookup",
            vec![pilgrim::Value::Int(NS_NODE as i64)],
        );
        w.run_until_idle(SimTime::from_secs(10));
        w.set_link_up(0, 1, true);
        w.run_until_idle(SimTime::from_secs(12));
        w
    };
    let w = run();
    assert!(
        w.journal().iter().any(|s| matches!(
            s,
            Stimulus::SetLinkUp {
                a: 0,
                b: 1,
                up: false
            }
        )),
        "set_link_up must journal"
    );
    let report = replay_load_artifact(&w.record(), 1).expect("replays");
    assert!(report.divergence.is_none(), "{:?}", report.divergence);
    assert!(report.byte_identical);

    let w2 = run();
    assert_eq!(
        w.trace_jsonl(),
        w2.trace_jsonl(),
        "forced cuts are deterministic"
    );
}

#[test]
fn gate_floors_fail_the_report() {
    let mut sc = scenario();
    sc.min_rps = Some(1_000_000); // impossible floor
    sc.max_p99_us = Some(1); // impossible ceiling
    let out = run_scenario(&sc).expect("runs");
    assert_eq!(out.gate_failures.len(), 2, "{:?}", out.gate_failures);
    assert!(
        out.report.contains("gate                  FAIL"),
        "{}",
        out.report
    );
    assert!(out.gate_failures[0].contains("below the declared floor"));
    assert!(out.gate_failures[1].contains("exceeds the declared ceiling"));
}

#[test]
fn flat_topology_stays_byte_compatible() {
    // A flat-topology load world must not consume different RNG streams
    // than the pre-topology network did: the services stack on a flat
    // ring is the same scenario PR 4's replay gate pinned. Cheap proxy:
    // two flat runs agree, and the recipe round-trips with the topology
    // fields present.
    let mut sc = scenario();
    sc.topology = pilgrim::Topology::Flat;
    sc.partitions.clear();
    sc.loss = 0.0;
    let a = run_scenario(&sc).expect("runs");
    let b = run_scenario(&sc).expect("runs");
    assert_eq!(a.report, b.report);
    let rendered = a.world.record().render();
    let back = Artifact::parse(&rendered).expect("parses");
    assert_eq!(back.recipe.net.topology, pilgrim::Topology::Flat);
    assert_eq!(back.recipe.net.partitions, vec![]);
    assert_eq!(back.recipe.setup.len(), 5, "services setup is recorded");
}

#[test]
fn servers_share_the_hub_segment() {
    let sc = scenario();
    let out = run_scenario(&sc).expect("runs");
    let net_seg = |n: u32| {
        // Recompute from the recipe's topology: servers must land in one
        // contiguous hub block so a single cut isolates a client arm,
        // never splits the services from each other.
        let stations = out.world.record().recipe.nodes + 1; // + debugger
        sc.topology.segment_of(n, stations)
    };
    assert_eq!(net_seg(NS_NODE), net_seg(FS_NODE));
    assert_eq!(net_seg(NS_NODE), 0, "servers live in the hub");
}
