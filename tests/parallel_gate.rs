//! Parallel-stepping determinism gate.
//!
//! Parallel stepping is admissible only while it is invisible: every
//! artifact a debugging session can observe — the JSONL trace, folded
//! flame stacks, the metrics inventory, the record/replay artifact, and
//! metric watch trips with their sync indices — must be byte-identical
//! whether nodes step on one thread or many. The `twin_run` harness runs
//! each scenario serially and at 2, 4, and 8 worker threads and asserts
//! exactly that; a property test repeats the comparison over random
//! seeds, topologies, debugger schedules, and thread counts with
//! shrinking.

use pilgrim::{
    twin_run, twin_threads, NetworkConfig, NodeConfig, SimDuration, SimTime, Value, World,
};
use pilgrim_mayflower::Node;
use pilgrim_sim::check::{check_n, choice, ensure, int_range, u64_range, zip_cases, Case, Gen};
use pilgrim_sim::DetRng;

/// `Node` migrates to worker threads under parallel stepping; this fails
/// to *compile* if anyone reintroduces non-`Send` state (an `Rc`, a
/// thread-bound trait object) anywhere in a node's reach.
#[test]
fn node_is_send() {
    fn assert_send<T: Send>() {}
    assert_send::<Node>();
    assert_send::<Vec<Node>>();
}

const FANOUT_MAIN: &str = "\
ping = proc (x: int) returns (int)
 fail(\"servers implement ping\")
end

main = proc (rounds: int)
 total: int := 0
 for i: int := 1 to rounds do
  total := total + call ping(i) at 1
  total := total + call ping(i * 10) at 2
  total := total + call ping(i * 100) at 3
 end
 print(\"total \" || int$unparse(total))
end";

const SERVER: &str = "\
ping = proc (x: int) returns (int)
 print(\"serve \" || int$unparse(x) || \" on \" || int$unparse(my_node()))
 return (x * 2)
end";

/// The everything-on scenario: four nodes, cross-node RPC fan-out, VM
/// profiling, a debugger session with a mid-run halt/resume, and a metric
/// watchpoint that trips (pinning a sync index). Every artifact family
/// the harness compares is exercised.
fn rich_scenario(threads: usize) -> World {
    let node_cfg = NodeConfig {
        profile_vm: true,
        ..NodeConfig::default()
    };
    let mut w = World::builder()
        .nodes(4)
        .program(FANOUT_MAIN)
        .program_for(1, SERVER)
        .program_for(2, SERVER)
        .program_for(3, SERVER)
        .node_config(node_cfg)
        .seed(0xda7a)
        .step_threads(threads)
        .build()
        .expect("rich scenario builds");
    w.debug_connect(&[0, 1, 2, 3], false).unwrap();
    w.arm_watch("rpc.completed > 2").unwrap();
    w.spawn(0, "main", vec![Value::Int(3)]);
    // Runs until the watchpoint trips...
    w.run_until_idle(SimTime::from_secs(30));
    // ...then debugs through the stop and lets the rest drain.
    let _ = w.debug_halt_all(0);
    w.run_for(SimDuration::from_millis(5));
    let _ = w.debug_resume_all();
    w.run_until_idle(SimTime::from_secs(60));
    w
}

#[test]
fn twin_gate_rich_scenario() {
    let serial = twin_run("rich_scenario", rich_scenario);
    assert!(
        !serial.watch_trips.is_empty(),
        "scenario must trip its watchpoint or the trip comparison is vacuous"
    );
    assert!(
        serial.folded_stacks.contains("ping"),
        "profiling must capture the remote procedure"
    );
}

/// A lossy network forces retransmissions, exercising the network and
/// RPC runtime RNGs; their draws all happen in the serial phase of the
/// pump, so loss patterns must not depend on the thread count.
fn lossy_scenario(threads: usize) -> World {
    let net = NetworkConfig {
        p_silent_loss: 0.08,
        ..NetworkConfig::default()
    };
    let mut w = World::builder()
        .nodes(4)
        .program(FANOUT_MAIN)
        .program_for(1, SERVER)
        .program_for(2, SERVER)
        .program_for(3, SERVER)
        .network(net)
        .seed(0x1055)
        .step_threads(threads)
        .build()
        .expect("lossy scenario builds");
    w.spawn(0, "main", vec![Value::Int(4)]);
    w.run_until_idle(SimTime::from_secs(60));
    w
}

#[test]
fn twin_gate_under_packet_loss() {
    let serial = twin_run("lossy_scenario", lossy_scenario);
    assert!(
        serial.metrics.contains("rpc.completed"),
        "metrics report must carry RPC counters"
    );
}

/// Thread counts beyond the node count must degrade to fewer busy
/// workers, not to divergence.
#[test]
fn more_threads_than_nodes() {
    twin_run("single_node", |threads| {
        let mut w = World::builder()
            .nodes(1)
            .program(
                "\
main = proc (n: int)
 total: int := 0
 for i: int := 1 to n do
  total := total + i
 end
 print(int$unparse(total))
end",
            )
            .seed(3)
            .step_threads(threads)
            .build()
            .unwrap();
        w.spawn(0, "main", vec![Value::Int(50)]);
        w.run_until_idle(SimTime::from_secs(10));
        w
    });
}

/// The runtime knob mirrors the builder knob and downgrades cleanly.
#[test]
fn set_step_threads_reconfigures() {
    let mut w = World::builder()
        .nodes(2)
        .program(FANOUT_MAIN)
        .program_for(1, SERVER)
        .build()
        .unwrap();
    assert_eq!(w.step_threads(), 1);
    w.set_step_threads(4);
    assert_eq!(w.step_threads(), 4);
    w.set_step_threads(0);
    assert_eq!(w.step_threads(), 1);
}

// ---------------------------------------------------------------------
// Property: serial and parallel runs agree for random scenarios.
// ---------------------------------------------------------------------

/// One random scenario: topology size, master seed, work amount, worker
/// thread count, and whether a debugger halts/resumes mid-run.
#[derive(Debug, Clone)]
struct Scenario {
    nodes: i64,
    seed: u64,
    iters: i64,
    threads: usize,
    with_debug: bool,
}

struct ScenarioGen;

/// The zipped tuple shape [`ScenarioGen`] assembles before mapping into a
/// [`Scenario`].
type RawScenario = ((i64, u64), (i64, (usize, i64)));

impl Gen for ScenarioGen {
    type Value = Scenario;
    fn generate(&self, rng: &mut DetRng) -> Case<Scenario> {
        let nodes = int_range(1, 4).generate(rng);
        let seed = u64_range(0, u64::MAX).generate(rng);
        let iters = int_range(1, 5).generate(rng);
        let threads = choice(twin_threads()).generate(rng);
        let debug = int_range(0, 1).generate(rng);
        let pair = zip_cases(
            zip_cases(nodes, seed),
            zip_cases(iters, zip_cases(threads, debug)),
        );
        pair.map(std::rc::Rc::new(|((n, s), (i, (t, d))): &RawScenario| {
            Scenario {
                nodes: *n,
                seed: *s,
                iters: *i,
                threads: *t,
                with_debug: *d == 1,
            }
        }))
    }
}

fn run_scenario(sc: &Scenario, threads: usize) -> World {
    let local = "\
main = proc (n: int)
 total: int := 0
 for i: int := 1 to n do
  total := total + i
 end
 print(int$unparse(total))
end";
    let remote_main = "\
ping = proc (x: int) returns (int)
 fail(\"only node 1 implements ping\")
end

main = proc (n: int)
 r: int := call ping(n) at 1
 print(int$unparse(r))
end";
    let mut b = World::builder()
        .nodes(sc.nodes as u32)
        .seed(sc.seed)
        .step_threads(threads)
        .program(if sc.nodes >= 2 { remote_main } else { local });
    if sc.nodes >= 2 {
        b = b.program_for(1, SERVER);
    }
    let mut w = b.build().expect("scenario builds");
    if sc.with_debug {
        let all: Vec<u32> = (0..sc.nodes as u32).collect();
        let _ = w.debug_connect(&all, false);
    }
    w.spawn(0, "main", vec![Value::Int(sc.iters)]);
    if sc.with_debug {
        w.run_for(SimDuration::from_millis(3));
        let _ = w.debug_halt_all(0);
        w.run_for(SimDuration::from_millis(5));
        let _ = w.debug_resume_all();
    }
    w.run_until_idle(SimTime::from_secs(30));
    w
}

#[test]
fn prop_parallel_run_matches_serial() {
    check_n("prop_parallel_run_matches_serial", 20, &ScenarioGen, |sc| {
        let serial = pilgrim::capture(&run_scenario(sc, 1));
        let parallel = pilgrim::capture(&run_scenario(sc, sc.threads));
        ensure(serial.trace == parallel.trace, "trace diverged")?;
        ensure(
            serial.folded_stacks == parallel.folded_stacks,
            "folded stacks diverged",
        )?;
        ensure(serial.metrics == parallel.metrics, "metrics diverged")?;
        ensure(serial.artifact == parallel.artifact, "artifact diverged")?;
        ensure(
            serial.watch_trips == parallel.watch_trips,
            "watch trips diverged",
        )
    });
}
