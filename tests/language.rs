//! Concurrent CLU language semantics, exercised through the full world
//! (compiler → supervisor → VM → ring), not just the bare VM.

use pilgrim::{SimTime, Value, World};

fn run(src: &str, entry: &str, args: Vec<Value>) -> Vec<String> {
    let mut w = World::builder()
        .nodes(1)
        .program(src)
        .debugger(false)
        .build()
        .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    w.spawn(0, entry, args);
    w.run_until_idle(SimTime::from_secs(120));
    w.console(0)
}

#[test]
fn arithmetic_precedence_and_modulo() {
    let out = run(
        "main = proc ()
 print(2 + 3 * 4)
 print((2 + 3) * 4)
 print(17 // 5)
 print(17 / 5)
 print(0 - 7 // 3)
 print(-(3 + 4))
end",
        "main",
        vec![],
    );
    assert_eq!(out, vec!["14", "20", "2", "3", "-1", "-7"]);
}

#[test]
fn string_operations() {
    let out = run(
        "main = proc ()
 a: string := \"foo\"
 b: string := a || \"bar\"
 print(b)
 print(int$unparse(123) || \"!\")
 if b = \"foobar\" then
  print(\"eq works\")
 end
 if a ~= b then
  print(\"ne works\")
 end
end",
        "main",
        vec![],
    );
    assert_eq!(out, vec!["foobar", "123!", "eq works", "ne works"]);
}

#[test]
fn nested_records_and_arrays() {
    let out = run(
        "point = record[x: int, y: int]
segment = record[a: point, b: point, name: string]
main = proc ()
 s: segment := segment${a: point${x: 0, y: 0}, b: point${x: 3, y: 4}, name: \"diag\"}
 s.b.x := s.b.x + 7
 pts: array[point] := array$new()
 append(pts, s.a)
 append(pts, s.b)
 print(len(pts))
 print(pts[1].x)
 print(s)
end",
        "main",
        vec![],
    );
    assert_eq!(out[0], "2");
    assert_eq!(out[1], "10");
    assert_eq!(out[2], "segment${point${0, 0}, point${10, 4}, \"diag\"}");
}

#[test]
fn records_are_shared_references_within_a_node() {
    // CLU records are heap objects: two variables naming the same record
    // see each other's mutations.
    let out = run(
        "box = record[v: int]
main = proc ()
 a: box := box${v: 1}
 b: box := a
 b.v := 99
 print(a.v)
end",
        "main",
        vec![],
    );
    assert_eq!(out, vec!["99"]);
}

#[test]
fn rpc_arguments_are_deep_copied_between_nodes() {
    // ...but transmission between nodes copies (marshalled), so remote
    // mutation cannot alias the caller's heap.
    let src = "\
box = record[v: int]
poke = proc (b: box) returns (int)
 b.v := 42
 return (b.v)
end
main = proc ()
 a: box := box${v: 1}
 r: int := call poke(a) at 1
 print(r)
 print(a.v)
end";
    let mut w = World::builder()
        .nodes(2)
        .program(src)
        .debugger(false)
        .build()
        .unwrap();
    w.spawn(0, "main", vec![]);
    w.run_until_idle(SimTime::from_secs(10));
    assert_eq!(w.console(0), vec!["42", "1"]);
}

#[test]
fn recursion_and_mutual_recursion() {
    let out = run(
        "is_even = proc (n: int) returns (bool)
 if n = 0 then
  return (true)
 end
 return (is_odd(n - 1))
end
is_odd = proc (n: int) returns (bool)
 if n = 0 then
  return (false)
 end
 return (is_even(n - 1))
end
main = proc ()
 print(is_even(10))
 print(is_odd(7))
 print(is_even(3))
end",
        "main",
        vec![],
    );
    assert_eq!(out, vec!["true", "true", "false"]);
}

#[test]
fn while_with_complex_conditions() {
    let out = run(
        "main = proc ()
 i: int := 0
 n: int := 0
 while i < 100 & n < 5 do
  i := i + 7
  n := n + 1
 end
 print(i)
 print(n)
 flag: bool := false
 j: int := 0
 while ~flag | j = 0 do
  j := j + 1
  flag := j >= 3
 end
 print(j)
end",
        "main",
        vec![],
    );
    assert_eq!(out, vec!["35", "5", "3"]);
}

#[test]
fn for_loops_with_dynamic_bounds_and_empty_ranges() {
    let out = run(
        "main = proc ()
 t: int := 0
 lo: int := 3
 hi: int := 6
 for i: int := lo to hi do
  t := t + i
 end
 print(t)
 u: int := 0
 for i: int := 5 to 1 do
  u := u + 1
 end
 print(u)
end",
        "main",
        vec![],
    );
    assert_eq!(out, vec!["18", "0"]);
}

#[test]
fn multiple_returns_and_multi_assignment() {
    let out = run(
        "divmod = proc (a: int, b: int) returns (int, int)
 return (a / b, a // b)
end
main = proc ()
 q: int := 0
 r: int := 0
 q, r := divmod(17, 5)
 print(q)
 print(r)
 r, q := divmod(9, 2)
 print(q)
 print(r)
end",
        "main",
        vec![],
    );
    assert_eq!(out, vec!["3", "2", "1", "4"]);
}

#[test]
fn own_globals_shared_across_processes() {
    let out = run(
        "own hits: array[int] := array$new()
own total: int := 0
worker = proc (n: int, d: sem)
 append(hits, n)
 total := total + n
 sem$signal(d)
end
main = proc ()
 d: sem := sem$create(0)
 for i: int := 1 to 4 do
  fork worker(i, d)
 end
 for i: int := 1 to 4 do
  ok: bool := sem$wait(d, 0 - 1)
 end
 print(len(hits))
 print(total)
end",
        "main",
        vec![],
    );
    assert_eq!(out, vec!["4", "10"]);
}

#[test]
fn shadowing_in_nested_blocks() {
    let out = run(
        "main = proc ()
 x: int := 1
 if true then
  x: string := \"inner\"
  print(x)
 end
 print(x)
 for x: int := 9 to 9 do
  print(x)
 end
 print(x)
end",
        "main",
        vec![],
    );
    assert_eq!(out, vec!["inner", "1", "9", "1"]);
}

#[test]
fn boolean_short_circuit_guards_division() {
    let out = run(
        "main = proc ()
 d: int := 0
 ok: bool := d ~= 0 & 10 / d > 1
 print(ok)
 ok2: bool := d = 0 | 10 / d > 1
 print(ok2)
end",
        "main",
        vec![],
    );
    assert_eq!(out, vec!["false", "true"]);
}

#[test]
fn random_is_deterministic_per_seed() {
    let src = "main = proc ()
 for i: int := 1 to 5 do
  print(random(1000))
 end
end";
    let run_seeded = |seed| {
        let mut w = World::builder()
            .nodes(1)
            .program(src)
            .debugger(false)
            .seed(seed)
            .build()
            .unwrap();
        w.spawn(0, "main", vec![]);
        w.run_until_idle(SimTime::from_secs(5));
        w.console(0)
    };
    assert_eq!(run_seeded(1), run_seeded(1));
    assert_ne!(run_seeded(1), run_seeded(2));
}

#[test]
fn spawn_arguments_flow_into_entry() {
    let out = run(
        "main = proc (label: string, n: int, flag: bool)
 if flag then
  print(label || \"/\" || int$unparse(n))
 end
end",
        "main",
        vec![Value::Str("job".into()), Value::Int(7), Value::Bool(true)],
    );
    assert_eq!(out, vec!["job/7"]);
}

#[test]
fn deep_call_chains_near_the_frame_limit_work() {
    let out = run(
        "down = proc (n: int) returns (int)
 if n = 0 then
  return (0)
 end
 return (down(n - 1) + 1)
end
main = proc ()
 print(down(400))
end",
        "main",
        vec![],
    );
    assert_eq!(out, vec!["400"]);
}

#[test]
fn type_aliases_interoperate_with_base_types() {
    let out = run(
        "date = int
ms = int
add_ms = proc (d: date, delta: ms) returns (date)
 return (d + delta)
end
main = proc ()
 d: date := 1000
 print(add_ms(d, 500))
 plain: int := d
 print(plain)
end",
        "main",
        vec![],
    );
    assert_eq!(out, vec!["1500", "1000"]);
}
