//! Hermeticity regression test: the workspace must build with zero
//! crates-io dependencies (the tier-1 environment has no network), so
//! every dependency in every manifest must be a workspace `path`
//! dependency. This test parses the manifests directly and fails the
//! moment a `version`-style (registry) dependency reappears.

use std::fs;
use std::path::{Path, PathBuf};

/// All manifests in the workspace: the root plus every crate.
fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let entries = fs::read_dir(&crates).expect("crates/ directory exists");
    for entry in entries {
        let manifest = entry.expect("readable dir entry").path().join("Cargo.toml");
        assert!(
            manifest.is_file(),
            "missing manifest {}",
            manifest.display()
        );
        out.push(manifest);
    }
    assert!(
        out.len() >= 8,
        "expected the root + 7 crates, found {out:?}"
    );
    out
}

/// A dependency entry found in some manifest section.
#[derive(Debug)]
struct Dep {
    manifest: String,
    section: String,
    line: String,
}

/// Extracts every dependency entry from `[dependencies]`,
/// `[dev-dependencies]`, `[build-dependencies]`, target-specific variants,
/// and `[workspace.dependencies]`.
fn dependency_entries(manifest: &Path) -> Vec<Dep> {
    let text =
        fs::read_to_string(manifest).unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
    let mut out = Vec::new();
    let mut section = String::new();
    let mut in_dep_table = false;
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            in_dep_table = section.ends_with("dependencies") || section == "workspace.dependencies";
            continue;
        }
        if in_dep_table {
            out.push(Dep {
                manifest: manifest.display().to_string(),
                section: section.clone(),
                line: line.to_string(),
            });
        }
    }
    out
}

/// A dependency entry is hermetic when it resolves inside the workspace:
/// either an inline `path = "…"` or a `workspace = true` reference to the
/// (path-only, separately checked) `[workspace.dependencies]` table.
fn is_hermetic(dep: &Dep) -> bool {
    if dep.section == "workspace.dependencies" {
        return dep.line.contains("path =") || dep.line.contains("path=");
    }
    dep.line.contains("workspace = true")
        || dep.line.contains("workspace=true")
        || dep.line.contains(".workspace")
        || dep.line.contains("path =")
        || dep.line.contains("path=")
}

#[test]
fn every_dependency_is_a_workspace_path_dependency() {
    let mut violations = Vec::new();
    let mut total = 0;
    for manifest in workspace_manifests() {
        for dep in dependency_entries(&manifest) {
            total += 1;
            if !is_hermetic(&dep) {
                violations.push(format!(
                    "{} [{}]: `{}`",
                    dep.manifest, dep.section, dep.line
                ));
            }
        }
    }
    assert!(total >= 7, "parser found suspiciously few deps ({total})");
    assert!(
        violations.is_empty(),
        "non-path dependencies found — the workspace must stay hermetic \
         (offline tier-1 cannot fetch crates):\n{}",
        violations.join("\n")
    );
}

#[test]
fn banned_registry_crates_never_reappear() {
    // The three crates this workspace used to pull from the registry; the
    // replacements live in-repo (pilgrim_sim::{DetRng, check},
    // pilgrim_bench::runner). Mentioning any of them as a dependency key
    // is an instant failure, even with a path.
    for manifest in workspace_manifests() {
        for dep in dependency_entries(&manifest) {
            let key = dep.line.split(['=', '.']).next().unwrap_or_default().trim();
            assert!(
                !matches!(key, "rand" | "proptest" | "criterion"),
                "{} [{}] reintroduces `{key}` — use the in-repo replacement",
                dep.manifest,
                dep.section
            );
        }
    }
}
