//! Failure injection across the stack: packet loss, node crashes, and
//! debugger crashes, with the behaviour the paper requires from each
//! layer.

use pilgrim::{
    AgentRequest, DebugError, DebugEvent, EventKind, MaybeDiagnosis, NetworkConfig, NodeId,
    RpcConfig, RunState, SimDuration, SimTime, Value, World,
};

const PINGER: &str = "\
pong = proc (n: int) returns (int)
 return (n)
end
main = proc (count: int)
 good: int := 0
 bad: int := 0
 for i: int := 1 to count do
  ok: bool := true
  r: int := 0
  ok, r := maybecall pong(i) at 1
  if ok then
   good := good + 1
  else
   bad := bad + 1
  end
 end
 print(\"good \" || int$unparse(good))
 print(\"bad \" || int$unparse(bad))
end";

#[test]
fn maybe_protocol_degrades_gracefully_under_random_loss() {
    let mut w = World::builder()
        .nodes(2)
        .program(PINGER)
        .network(NetworkConfig {
            p_silent_loss: 0.25,
            seed: 7,
            ..Default::default()
        })
        .debugger(false)
        .build()
        .unwrap();
    w.spawn(0, "main", vec![Value::Int(40)]);
    w.run_until_idle(SimTime::from_secs(120));
    let out = w.console(0);
    let good: i64 = out[0].trim_start_matches("good ").parse().unwrap();
    let bad: i64 = out[1].trim_start_matches("bad ").parse().unwrap();
    assert_eq!(good + bad, 40, "every call completes one way or the other");
    assert!(bad > 0, "25% loss must show up");
    assert!(
        good > 10,
        "most calls still succeed (loss must hit both packets)"
    );
}

#[test]
fn exactly_once_rides_through_the_same_loss() {
    let src = "\
pong = proc (n: int) returns (int)
 return (n)
end
main = proc (count: int)
 t: int := 0
 for i: int := 1 to count do
  t := t + call pong(i) at 1
 end
 print(int$unparse(t))
end";
    // 25% loss hits call and reply independently, so a single attempt
    // fails ~44% of the time; give the protocol enough attempts that all
    // 40 calls get through.
    let mut w = World::builder()
        .nodes(2)
        .program(src)
        .network(NetworkConfig {
            p_silent_loss: 0.25,
            seed: 7,
            ..Default::default()
        })
        .rpc(RpcConfig {
            max_attempts: 12,
            ..Default::default()
        })
        .debugger(false)
        .build()
        .unwrap();
    w.spawn(0, "main", vec![Value::Int(40)]);
    w.run_until_idle(SimTime::from_secs(600));
    assert_eq!(w.console(0), vec![(1..=40).sum::<i64>().to_string()]);
    assert!(
        w.endpoint(0).stats().retransmits > 0,
        "reliability must have been earned by retransmission"
    );
}

#[test]
fn crashed_node_faults_exactly_once_callers() {
    let src = "\
pong = proc (n: int) returns (int)
 return (n)
end
main = proc ()
 r: int := call pong(1) at 1
 print(r)
end";
    let mut w = World::builder().nodes(2).program(src).build().unwrap();
    w.debug_connect(&[0], false).unwrap();
    w.net_mut().set_up(NodeId(1), false); // node 1 has crashed
    w.spawn(0, "main", vec![]);
    // The agent reports the resulting fault like any execution error.
    let ev = w.wait_for_stop(SimDuration::from_secs(10)).unwrap();
    let DebugEvent::ProcessFaulted { message, node, .. } = ev else {
        panic!("expected fault, got {ev:?}")
    };
    assert_eq!(node.0, 0);
    assert!(message.contains("no response"), "{message}");
}

#[test]
fn halt_broadcast_survives_interface_loss() {
    // 30% interface-level loss: the ring NACKs and the agent retransmits
    // (§5.2's negative-acknowledgement scheme), so every node still halts.
    let src = "\
spin = proc ()
 i: int := 0
 while i < 1000000 do
  i := i + 1
  sleep(5)
 end
end
trigger = proc ()
 sleep(20)
 marker()
end
marker = proc ()
 x: int := 1
end";
    let mut w = World::builder()
        .nodes(4)
        .program(src)
        .network(NetworkConfig {
            p_interface_loss: 0.3,
            seed: 11,
            ..Default::default()
        })
        .build()
        .unwrap();
    w.debug_connect(&[0, 1, 2, 3], false).unwrap();
    w.break_at_line(0, 10).unwrap();
    for n in 1..4 {
        w.spawn(n, "spin", vec![]);
    }
    w.spawn(0, "trigger", vec![]);
    w.wait_for_stop(SimDuration::from_secs(5)).unwrap();
    w.run_for(SimDuration::from_millis(100));
    for n in 1..4 {
        let procs = w.debug_processes(n).unwrap();
        assert!(
            procs.iter().all(|p| p.halted || p.no_halt),
            "node {n} must be halted despite the lossy ring"
        );
    }
    // The agent had to retransmit at least once with 30% loss and 3 dests
    // (probabilistically certain with this seed).
    let stats = w.agent(0).unwrap().stats();
    assert!(stats.halt_messages >= 3, "{stats:?}");
    w.debug_resume_all().unwrap();
}

#[test]
fn debugger_crash_then_forcible_reconnect_recovers_the_program() {
    let src = "\
main = proc ()
 t: int := 0
 while t < 500 do
  t := t + 1
  sleep(10)
 end
 print(\"finished\")
end";
    let mut w = World::builder().nodes(1).program(src).build().unwrap();
    w.debug_connect(&[0], false).unwrap();
    w.break_at_line(0, 5).unwrap(); // inside the loop
    let pid = w.spawn(0, "main", vec![]).0;
    w.wait_for_stop(SimDuration::from_secs(2)).unwrap();

    // The debugger "crashes" while the program sits halted at a trap.
    w.debug_abandon();

    // A plain reconnect is refused — the agent still owns the session and
    // uses no timeouts of its own (§3).
    assert!(matches!(
        w.debug_connect(&[0], false),
        Err(DebugError::Refused)
    ));

    // Forcible connection clears the breakpoints, releases the stopped
    // process and resumes the halted node (§3).
    w.debug_connect(&[0], true).unwrap();
    assert!(matches!(
        w.node(0).process(pilgrim::Pid(pid)).unwrap().state,
        RunState::Runnable | RunState::Sleeping { .. }
    ));
    w.run_until_idle(w.now() + SimDuration::from_secs(60));
    assert_eq!(
        w.console(0),
        vec!["finished"],
        "the program completes untouched"
    );
}

#[test]
fn disconnect_resets_the_logical_clock() {
    let src = "\
main = proc ()
 i: int := 0
 while i < 100000 do
  i := i + 1
  sleep(100)
 end
end";
    let mut w = World::builder().nodes(1).program(src).build().unwrap();
    w.debug_connect(&[0], false).unwrap();
    w.spawn(0, "main", vec![]);
    w.run_for(SimDuration::from_millis(200));
    w.debug_halt_all(0).unwrap();
    w.run_for(SimDuration::from_secs(2));
    w.debug_resume_all().unwrap();
    assert!(w.node(0).delta() > SimDuration::from_secs(1));
    // §5.2: "At the end of a debugging session the logical clock is reset
    // to real time."
    w.debug_disconnect().unwrap();
    assert_eq!(w.node(0).delta(), SimDuration::ZERO);
}

#[test]
fn requests_to_a_crashed_node_time_out_at_the_debugger() {
    let mut w = World::builder().nodes(2).program(PINGER).build().unwrap();
    w.debug_connect(&[0, 1], false).unwrap();
    w.net_mut().set_up(NodeId(1), false);
    let before = w.now();
    match w.debug_request(1, AgentRequest::Ping) {
        Err(DebugError::Timeout) => {}
        other => panic!("expected timeout, got {other:?}"),
    }
    assert!(w.now().saturating_since(before) >= SimDuration::from_secs(29));
}

#[test]
fn retransmission_keeps_the_root_span() {
    let src = "\
pong = proc (n: int) returns (int)
 return (n)
end
main = proc ()
 r: int := call pong(7) at 1
 print(r)
end";
    let mut w = World::builder()
        .nodes(2)
        .program(src)
        .debugger(false)
        .build()
        .unwrap();
    // Lose the first call packet: the exactly-once protocol retransmits,
    // and the retransmission must carry the original span — one causal
    // activity, not a new one.
    w.net_mut().drop_next(NodeId(0), NodeId(1), 1);
    w.spawn(0, "main", vec![]);
    w.run_until_idle(SimTime::from_secs(30));
    assert_eq!(w.console(0), vec!["7"]);

    let start = w
        .tracer()
        .events()
        .into_iter()
        .find(|e| matches!(e.kind, EventKind::CallStarted { .. }))
        .expect("the call start was traced");
    let span = start.span.expect("a span is allocated at call origination");
    let timeline = w.tracer().events_for_span(span);
    let names: Vec<&str> = timeline.iter().map(|e| e.kind.name()).collect();
    assert_eq!(
        names.iter().filter(|n| **n == "CallStarted").count(),
        1,
        "a retransmission is not a new call: {names:?}"
    );
    assert!(names.contains(&"PacketLost"), "{names:?}");
    assert!(names.contains(&"CallRetransmitted"), "{names:?}");
    assert!(
        names.iter().filter(|n| **n == "PacketSent").count() >= 3,
        "lost call, retransmission, and reply all share the root span: {names:?}"
    );
    assert_eq!(names.last(), Some(&"CallCompleted"), "{names:?}");
    assert!(
        timeline.iter().any(|e| e.node == Some(1)),
        "the span crosses onto the server node: {names:?}"
    );
}

#[test]
fn maybe_loss_diagnoses_emit_distinct_event_kinds() {
    let src = "\
pong = proc (n: int) returns (int)
 return (n)
end
main = proc ()
 ok: bool := true
 r: int := 0
 ok, r := maybecall pong(5) at 1
 sleep(600000)
end";
    for drop_call in [true, false] {
        let mut w = World::builder().nodes(2).program(src).build().unwrap();
        w.debug_connect(&[0, 1], false).unwrap();
        if drop_call {
            w.net_mut().drop_next(NodeId(0), NodeId(1), 1);
        } else {
            w.net_mut().drop_next(NodeId(1), NodeId(0), 1);
        }
        w.spawn(0, "main", vec![]);
        w.run_for(SimDuration::from_millis(300));
        let (call_id, ok) = *w.recent_calls(0).unwrap().last().expect("one call");
        assert!(!ok);
        let diagnosis = w.diagnose_maybe_failure(1, call_id).unwrap();
        let span = w
            .span_of_call(call_id)
            .expect("the call's span is in the trace");
        let timeline = w.tracer().events_for_span(span);
        let last = timeline
            .last()
            .expect("diagnosis event recorded")
            .kind
            .clone();
        // §4.1: the two verdicts are different facts with different
        // recovery actions, so they get distinct event kinds.
        if drop_call {
            assert_eq!(diagnosis, MaybeDiagnosis::LostCall);
            assert!(
                matches!(last, EventKind::MaybeLostCall { call_id: c } if c == call_id),
                "{last:?}"
            );
        } else {
            assert_eq!(diagnosis, MaybeDiagnosis::LostReply);
            assert!(
                matches!(last, EventKind::MaybeLostReply { call_id: c } if c == call_id),
                "{last:?}"
            );
        }
    }
}
