//! CLU signal semantics (`signal` / `except when`), up to and including
//! the paper's Figure 3 algorithm written in Concurrent CLU itself.

use pilgrim::{SimDuration, SimTime, Value, World};

fn run(src: &str, entry: &str, args: Vec<Value>) -> Vec<String> {
    let mut w = World::builder()
        .nodes(1)
        .program(src)
        .debugger(false)
        .build()
        .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    w.spawn(0, entry, args);
    w.run_until_idle(SimTime::from_secs(60));
    w.console(0)
}

#[test]
fn signal_caught_by_local_handler() {
    let out = run(
        "risky = proc (n: int) returns (int) signals (too_big)
 if n > 10 then
  signal too_big
 end
 return (n * 2)
end
main = proc ()
 x: int := risky(3)
 print(x)
 y: int := risky(99)
 except when too_big:
  print(\"caught too_big\")
 end
 print(\"after\")
end",
        "main",
        vec![],
    );
    assert_eq!(out, vec!["6", "caught too_big", "after"]);
}

#[test]
fn signal_unwinds_through_intermediate_frames() {
    let out = run(
        "deep = proc () signals (boom)
 signal boom
end
middle = proc ()
 deep()
 print(\"unreachable\")
end
main = proc ()
 middle()
 except when boom:
  print(\"caught two frames up\")
 end
end",
        "main",
        vec![],
    );
    assert_eq!(out, vec!["caught two frames up"]);
}

#[test]
fn multiple_arms_select_by_name() {
    let out = run(
        "pick = proc (n: int) signals (low, high)
 if n < 0 then
  signal low
 end
 if n > 9 then
  signal high
 end
 print(\"ok\")
end
try = proc (n: int)
 pick(n)
 except when low:
  print(\"low\")
 when high:
  print(\"high\")
 end
end
main = proc ()
 try(5)
 try(0 - 1)
 try(50)
end",
        "main",
        vec![],
    );
    assert_eq!(out, vec!["ok", "low", "high"]);
}

#[test]
fn one_arm_can_name_several_signals() {
    let out = run(
        "pick = proc (n: int) signals (a, b)
 if n = 0 then
  signal a
 end
 signal b
end
main = proc ()
 pick(0)
 except when a, b:
  print(\"either\")
 end
 pick(1)
 except when a, b:
  print(\"either again\")
 end
end",
        "main",
        vec![],
    );
    assert_eq!(out, vec!["either", "either again"]);
}

#[test]
fn uncaught_signal_faults_the_process() {
    let src = "\
boom = proc () signals (disaster)
 signal disaster
end
main = proc ()
 boom()
 print(\"unreachable\")
end";
    let mut w = World::builder().nodes(1).program(src).build().unwrap();
    w.debug_connect(&[0], false).unwrap();
    w.spawn(0, "main", vec![]);
    let ev = w.wait_for_stop(SimDuration::from_secs(2)).unwrap();
    match ev {
        pilgrim::DebugEvent::ProcessFaulted { message, .. } => {
            assert!(message.contains("UncaughtSignal"), "{message}");
            assert!(message.contains("disaster"), "{message}");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn undeclared_signal_is_a_compile_error() {
    let err = pilgrim::compile(
        "f = proc ()
 signal whoops
end",
    )
    .unwrap_err();
    assert!(err.to_string().contains("not declared"), "{err}");
}

#[test]
fn handlers_are_scoped_to_their_statement() {
    let out = run(
        "go = proc (n: int) signals (s)
 if n = 1 then
  signal s
 end
 print(\"ran \" || int$unparse(n))
end
outer = proc () signals (s)
 go(0)
 except when s:
  print(\"inner handler\")
 end
 go(1)
end
main = proc ()
 outer()
 except when s:
  print(\"outer handler\")
 end
end",
        "main",
        vec![],
    );
    // The first handler protects only go(0); the signal from go(1)
    // propagates out of `outer` to main's handler.
    assert_eq!(out, vec!["ran 0", "outer handler"]);
}

#[test]
fn nested_handlers_pick_the_innermost() {
    let out = run(
        "raisekind = proc () signals (s)
 signal s
end
main = proc ()
 raisekind()
 except when s:
  raisekind()
  except when s:
   print(\"innermost\")
  end
  print(\"outer arm continues\")
 end
end",
        "main",
        vec![],
    );
    assert_eq!(out, vec!["innermost", "outer arm continues"]);
}

#[test]
fn loop_state_survives_a_handled_signal() {
    // The Figure 3 shape: a loop whose body signals and whose handler
    // decides whether to keep looping.
    let out = run(
        "tick = proc (n: int) signals (timed_out)
 if n // 2 = 0 then
  signal timed_out
 end
end
main = proc ()
 hits: int := 0
 for i: int := 1 to 6 do
  tick(i)
  except when timed_out:
   hits := hits + 1
  end
 end
 print(hits)
end",
        "main",
        vec![],
    );
    assert_eq!(out, vec!["3"]);
}

/// The paper's Figure 3, transliterated into Concurrent CLU: a server-side
/// loop extending a timeout using only `get_debuggee_status`. This runs on
/// a "server" node while the client node is halted at a breakpoint for
/// longer than the whole timeout — the loop must extend rather than
/// expire, and the total logical wait must match the timeout.
#[test]
fn figure3_algorithm_in_concurrent_clu() {
    let server = "\
extern get_debuggee_status = proc () returns (int, int)

% wait_with_timeout signals timed_out when the semaphore wait expires
% (CLU's semaphore_wait surfaced as a signal, as the paper writes it).
wait_with_timeout = proc (s: sem, t: int) signals (timed_out)
 ok: bool := sem$wait(s, t)
 if ~ok then
  signal timed_out
 end
end

% Figure 3, using only get_debuggee_status.
guard = proc (client: int, original_timeout: int)
 timeout: int := original_timeout
 tolerance: int := 100
 s: sem := sem$create(0)
 ok: bool := true
 client_start: int := 0
 dbg: int := 0
 ok, dbg, client_start := status(client)
 keep_waiting: bool := true
 while keep_waiting do
  keep_waiting := false
  wait_with_timeout(s, timeout)
  except when timed_out:
   client_now: int := 0
   ok, dbg, client_now := status(client)
   if now() > client_now + tolerance then
    % Client logical time is slow: client may have been breakpointed
    % during the timeout. Compute how much of the timeout remains.
    time_left: int := timeout - (client_now - client_start)
    if time_left > tolerance then
     timeout := time_left
     client_start := client_now
     keep_waiting := true
    end
   end
  end
 end
 print(\"timeout expired after logical \" || int$unparse(now() - 0))
 print(\"revoking\")
end

% maybecall wrapper so a failed status probe reads as not-debugged.
status = proc (client: int) returns (bool, int, int)
 ok: bool := true
 dbg: int := 0
 t: int := 0
 ok, dbg, t := maybecall get_debuggee_status() at client
 return (ok, dbg, t)
end";
    let client = "\
idle = proc ()
 i: int := 0
 while i < 1000000 do
  i := i + 1
  sleep(50)
 end
end";
    let mut w = World::builder()
        .nodes(2)
        .program_for(0, client)
        .program_for(1, server)
        .build()
        .unwrap();
    w.debug_connect(&[0], false).unwrap();
    w.spawn(0, "idle", vec![]);
    // The Figure 3 guard on node 1 watches a 2-second timeout for client 0.
    w.spawn(1, "guard", vec![Value::Int(0), Value::Int(2_000)]);
    w.run_for(SimDuration::from_millis(500));

    // Halt the client for 5 s (longer than the whole timeout).
    w.debug_halt_all(0).unwrap();
    w.run_for(SimDuration::from_secs(5));
    assert!(
        w.console(1).is_empty(),
        "the guard must still be extending, not revoking: {:?}",
        w.console(1)
    );
    w.debug_resume_all().unwrap();

    w.run_until_idle(w.now() + SimDuration::from_secs(30));
    let out = w.console(1);
    assert_eq!(out.len(), 2, "{out:?}");
    assert_eq!(out[1], "revoking");
    // Total real time spent: ~2s timeout + ~5s halt; the guard revoked
    // only after the *logical* timeout ran out.
    let real_elapsed = w.now().as_millis();
    assert!(
        real_elapsed >= 7_000,
        "guard revoked too early at {real_elapsed}ms"
    );
}
