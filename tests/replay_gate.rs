//! Record/replay divergence gate.
//!
//! Records the semantics-lock scenario (sleep + cross-node RPC +
//! breakpoint hit/resume, pinned seed), rebuilds a world from the
//! rendered artifact *alone*, and demands the fresh trace be
//! byte-identical to the recorded one. Then corrupts a single recorded
//! event and demands the divergence checker name that event's index,
//! kind, and the exact field that changed — proving the gate can actually
//! fail. A property test repeats the round trip over random seeds,
//! topologies, and stimulus mixes.

use pilgrim::replay::{replay, replay_with_threads, Artifact};
use pilgrim::{twin_threads, DebugEvent, NodeConfig, SimDuration, SimTime, Value, World};
use pilgrim_sim::check::{check_n, ensure, int_range, u64_range, zip_cases, Case, Gen};
use pilgrim_sim::DetRng;

const NODE0: &str = "\
ping = proc (x: int) returns (int)
 fail(\"only node 1 implements ping\")
end

main = proc ()
 sleep(5)
 r: int := call ping(21) at 1
 print(\"got \" || int$unparse(r))
end";

const NODE1: &str = "\
ping = proc (x: int) returns (int)
 print(\"ping \" || int$unparse(x))
 return (x * 2)
end";

/// The semantics-lock scenario, driven exclusively through recorded APIs.
fn lock_scenario() -> World {
    lock_scenario_with(1, false)
}

/// [`lock_scenario`] with a stepping thread count and optional VM
/// profiling (profiling makes `record()` embed folded stacks, which the
/// cross-mode replay tests then verify via `profile_identical`).
fn lock_scenario_with(threads: usize, profile: bool) -> World {
    let mut w = World::builder()
        .nodes(2)
        .program(NODE0)
        .program_for(1, NODE1)
        .seed(42)
        .step_threads(threads)
        .node_config(NodeConfig {
            profile_vm: profile,
            ..NodeConfig::default()
        })
        .build()
        .expect("scenario builds");
    w.debug_connect(&[0, 1], false).unwrap();
    w.break_at_proc(1, "ping").unwrap();
    w.spawn(0, "main", vec![]);
    let ev = w.wait_for_stop(SimDuration::from_secs(10)).unwrap();
    let DebugEvent::BreakpointHit { pid, .. } = ev else {
        panic!("expected breakpoint hit, got {ev:?}");
    };
    let bp = w.debugger().unwrap().breakpoints()[0].bp;
    w.clear_breakpoint(1, bp).unwrap();
    w.continue_process(1, pid).unwrap();
    w.debug_resume_all().unwrap();
    w.run_until_idle(SimTime::from_secs(30));
    w
}

#[test]
fn semantics_lock_scenario_replays_byte_identically() {
    let world = lock_scenario();
    let text = world.record().render();
    drop(world); // the replay must work from the artifact text alone

    let artifact = Artifact::parse(&text).expect("rendered artifact parses");
    let report = replay(&artifact).expect("replay runs");
    assert!(
        report.divergence.is_none(),
        "clean replay diverged:\n{}",
        report.divergence.unwrap().report()
    );
    assert!(
        report.byte_identical,
        "traces equal event-wise but not byte-for-byte"
    );
    assert!(report.recorded_events > 0, "scenario produced no trace");
}

#[test]
fn replayed_world_rerecords_the_same_artifact() {
    // A replayed world goes through the same public recording APIs, so
    // recording it again must reproduce the original artifact exactly.
    let original = lock_scenario().record().render();
    let report = replay(&Artifact::parse(&original).unwrap()).unwrap();
    assert_eq!(report.world.record().render(), original);
}

#[test]
fn mutated_trace_is_reported_with_index_kind_and_field() {
    let artifact = lock_scenario().record();
    let lines: Vec<&str> = artifact.trace.lines().collect();
    let victim = lines
        .iter()
        .position(|l| l.contains("\"ok\": true"))
        .expect("scenario completes at least one call");

    let mut corrupted = artifact.clone();
    corrupted.trace = lines
        .iter()
        .enumerate()
        .map(|(i, l)| {
            if i == victim {
                l.replace("\"ok\": true", "\"ok\": false")
            } else {
                (*l).to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";

    let report = replay(&corrupted).expect("replay runs");
    assert!(!report.byte_identical);
    let d = report.divergence.expect("mutation must be detected");
    assert_eq!(d.index, victim, "divergence pinned to the mutated event");
    assert!(
        d.fields.iter().any(|f| f.field == "data.ok"),
        "expected a data.ok field diff, got {:?}",
        d.fields
    );
    let rendered = d.report();
    assert!(
        rendered.contains(&format!("event {victim}")),
        "report names the event index: {rendered}"
    );
    assert!(
        rendered.contains("CallCompleted"),
        "report names the event kind: {rendered}"
    );
}

#[test]
fn truncated_trace_is_reported_as_early_end() {
    let artifact = lock_scenario().record();
    let mut lines: Vec<&str> = artifact.trace.lines().collect();
    let kept = lines.len() - 3;
    lines.truncate(kept);
    let mut corrupted = artifact.clone();
    corrupted.trace = lines.join("\n") + "\n";

    let report = replay(&corrupted).expect("replay runs");
    let d = report.divergence.expect("truncation must be detected");
    assert_eq!(d.index, kept);
    assert!(d.expected.is_none() && d.actual.is_some());
}

// ---------------------------------------------------------------------
// Cross-mode replay: thread count is not part of a world's identity, so
// recordings must replay byte-identically across stepping modes.
// ---------------------------------------------------------------------

/// A world recorded under parallel stepping replays identically under
/// serial stepping, embedded profile included.
#[test]
fn parallel_recording_replays_serially() {
    let world = lock_scenario_with(4, true);
    assert_eq!(world.step_threads(), 4);
    let text = world.record().render();
    drop(world);

    let artifact = Artifact::parse(&text).expect("rendered artifact parses");
    let report = replay(&artifact).expect("replay runs");
    assert!(
        report.divergence.is_none(),
        "parallel recording diverged under serial replay:\n{}",
        report.divergence.unwrap().report()
    );
    assert!(report.byte_identical);
    assert_eq!(
        report.profile_identical,
        Some(true),
        "embedded folded-stack profile must survive the mode switch"
    );
}

/// A world recorded under serial stepping replays identically at every
/// parallel thread count, embedded profile included.
#[test]
fn serial_recording_replays_in_parallel() {
    let artifact = lock_scenario_with(1, true).record();
    for threads in twin_threads() {
        let report = replay_with_threads(&artifact, threads).expect("replay runs");
        assert!(
            report.divergence.is_none(),
            "serial recording diverged at {threads} threads:\n{}",
            report.divergence.unwrap().report()
        );
        assert!(
            report.byte_identical,
            "not byte-identical at {threads} threads"
        );
        assert_eq!(report.profile_identical, Some(true));
        assert_eq!(report.world.step_threads(), threads);
    }
}

// ---------------------------------------------------------------------
// Property: record -> replay is byte-identical for random worlds.
// ---------------------------------------------------------------------

/// One random scenario: topology size, master seed, loop bound, and
/// whether the debugger connects and halts/resumes mid-run.
#[derive(Debug, Clone)]
struct Scenario {
    nodes: i64,
    seed: u64,
    iters: i64,
    with_debug: bool,
}

struct ScenarioGen;

impl Gen for ScenarioGen {
    type Value = Scenario;
    fn generate(&self, rng: &mut DetRng) -> Case<Scenario> {
        let nodes = int_range(1, 3).generate(rng);
        let seed = u64_range(0, u64::MAX).generate(rng);
        let iters = int_range(1, 6).generate(rng);
        let debug = int_range(0, 1).generate(rng);
        let pair = zip_cases(zip_cases(nodes, seed), zip_cases(iters, debug));
        pair.map(std::rc::Rc::new(
            |((n, s), (i, d)): &((i64, u64), (i64, i64))| Scenario {
                nodes: *n,
                seed: *s,
                iters: *i,
                with_debug: *d == 1,
            },
        ))
    }
}

fn run_scenario(sc: &Scenario) -> World {
    let local = "\
main = proc (n: int)
 total: int := 0
 for i: int := 1 to n do
  total := total + i
 end
 print(int$unparse(total))
end";
    let remote_main = "\
ping = proc (x: int) returns (int)
 fail(\"only node 1 implements ping\")
end

main = proc (n: int)
 r: int := call ping(n) at 1
 print(int$unparse(r))
end";
    let mut b = World::builder()
        .nodes(sc.nodes as u32)
        .seed(sc.seed)
        .program(if sc.nodes >= 2 { remote_main } else { local });
    if sc.nodes >= 2 {
        b = b.program_for(1, NODE1);
    }
    let mut w = b.build().expect("scenario builds");
    if sc.with_debug {
        let all: Vec<u32> = (0..sc.nodes as u32).collect();
        let _ = w.debug_connect(&all, false);
    }
    w.spawn(0, "main", vec![Value::Int(sc.iters)]);
    if sc.with_debug {
        w.run_for(SimDuration::from_millis(3));
        let _ = w.debug_halt_all(0);
        w.run_for(SimDuration::from_millis(5));
        let _ = w.debug_resume_all();
    }
    w.run_until_idle(SimTime::from_secs(30));
    w
}

#[test]
fn prop_record_replay_is_byte_identical() {
    check_n(
        "prop_record_replay_is_byte_identical",
        24,
        &ScenarioGen,
        |sc| {
            let text = run_scenario(sc).record().render();
            let artifact = Artifact::parse(&text).map_err(|e| format!("parse: {e}"))?;
            let report = replay(&artifact).map_err(|e| format!("replay: {e}"))?;
            if let Some(d) = report.divergence {
                return Err(format!("diverged:\n{}", d.report()));
            }
            ensure(report.byte_identical, "trace not byte-identical")
        },
    );
}
