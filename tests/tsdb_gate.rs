//! Time-series & flight-recorder determinism gate.
//!
//! The windowed time-series store samples the metrics registry at every
//! lockstep sync point, and the flight recorder keeps a bounded ring of
//! recent events even with full tracing off. Both are only admissible if
//! they are *reproducible*: serial runs, parallel runs (2/4/8 stepping
//! threads), and replays of a recording must all render byte-identical
//! `tsdb` output, causal critical-path reports, and blackbox snapshots.
//! This gate, in the style of `tests/parallel_gate.rs`, enforces exactly
//! that.

use pilgrim::blackbox::BlackboxSnapshot;
use pilgrim::replay::replay;
use pilgrim::{twin_threads, NetworkConfig, SimTime, TraceCategory, Value, World};

const FANOUT_MAIN: &str = "\
ping = proc (x: int) returns (int)
 fail(\"servers implement ping\")
end

main = proc (rounds: int)
 total: int := 0
 for i: int := 1 to rounds do
  total := total + call ping(i) at 1
  total := total + call ping(i * 10) at 2
  total := total + call ping(i * 100) at 3
 end
 print(\"total \" || int$unparse(total))
end";

const SERVER: &str = "\
ping = proc (x: int) returns (int)
 return (x * 2)
end";

/// RPC fan-out over a lossy network with the full-resolution store armed:
/// retransmissions move the counters and the latency histogram, so every
/// series family gets sampled history to compare.
fn tsdb_scenario(threads: usize) -> World {
    let net = NetworkConfig {
        p_silent_loss: 0.08,
        ..NetworkConfig::default()
    };
    let mut w = World::builder()
        .nodes(4)
        .program(FANOUT_MAIN)
        .program_for(1, SERVER)
        .program_for(2, SERVER)
        .program_for(3, SERVER)
        .network(net)
        .seed(0x1055)
        .tsdb(true)
        .step_threads(threads)
        .build()
        .expect("tsdb scenario builds");
    w.spawn(0, "main", vec![Value::Int(4)]);
    w.run_until_idle(SimTime::from_secs(60));
    w
}

/// Every observability artifact this gate compares across runs.
fn capture_observability(w: &World) -> Vec<(&'static str, String)> {
    vec![
        ("tsdb summary", w.tsdb_summary()),
        ("tsdb net.sent w1", w.tsdb_report("net.sent", 1)),
        ("tsdb net.sent w4", w.tsdb_report("net.sent", 4)),
        ("tsdb rpc.completed w8", w.tsdb_report("rpc.completed", 8)),
        (
            "tsdb rpc.latency_us w16",
            w.tsdb_report("rpc.latency_us", 16),
        ),
        ("tsdb sched gauge", w.tsdb_report("sched.node0.runnable", 4)),
        ("critical path", w.critical_path_report()),
        ("slowest spans", w.slowest_report(5)),
        ("blackbox snapshot", w.blackbox_snapshot("gate").render()),
        ("observability report", w.observability_report()),
    ]
}

#[test]
fn twin_gate_tsdb_and_causal_outputs() {
    let serial = tsdb_scenario(1);
    let reference = capture_observability(&serial);
    let (_, summary) = &reference[0];
    assert!(
        summary.contains("counter net.sent") && summary.contains("histogram rpc.latency_us"),
        "full-resolution store must have sampled every metric family:\n{summary}"
    );
    for threads in twin_threads() {
        let parallel = tsdb_scenario(threads);
        for ((what, want), (_, got)) in reference.iter().zip(capture_observability(&parallel)) {
            assert_eq!(
                *want, got,
                "{what} differs between serial and {threads}-thread runs"
            );
        }
    }
}

#[test]
fn replayed_world_renders_identical_tsdb_output() {
    let live = tsdb_scenario(1);
    let artifact = live.record();
    assert!(
        artifact.recipe.tsdb,
        "the recipe must carry the tsdb knob or replays sample nothing"
    );
    let report = replay(&artifact).expect("replay succeeds");
    assert!(
        report.byte_identical,
        "replayed trace must be byte-identical"
    );
    for ((what, want), (_, got)) in capture_observability(&live)
        .iter()
        .zip(capture_observability(&report.world))
    {
        assert_eq!(*want, got, "{what} differs between live run and replay");
    }
}

#[test]
fn flight_recorder_captures_with_tracing_off() {
    let net = NetworkConfig {
        p_silent_loss: 0.08,
        ..NetworkConfig::default()
    };
    let mut w = World::builder()
        .nodes(4)
        .program(FANOUT_MAIN)
        .program_for(1, SERVER)
        .program_for(2, SERVER)
        .program_for(3, SERVER)
        .network(net)
        .seed(0x1055)
        .build()
        .expect("scenario builds");
    w.tracer().set_filter(&[]);
    w.spawn(0, "main", vec![Value::Int(4)]);
    w.run_until_idle(SimTime::from_secs(60));
    assert!(
        w.tracer().events().is_empty(),
        "main trace must stay empty with tracing off"
    );
    assert!(
        w.tracer().blackbox_len() > 0,
        "flight recorder must keep capturing with tracing off"
    );
    let snap = w.blackbox_snapshot("gate");
    let events = snap.decode_events().expect("ring decodes");
    assert!(!events.is_empty());
    // The dump is self-describing: it round-trips through its renderer
    // and the coarse always-on store contributed metric windows.
    let text = snap.render();
    let back = BlackboxSnapshot::parse(&text).expect("parses");
    assert_eq!(back.render(), text);
    assert!(
        snap.windows.contains("samples retained"),
        "coarse store summary missing:\n{}",
        snap.windows
    );
}

#[test]
fn watch_trip_freezes_a_blackbox_snapshot() {
    let mut w = tsdb_scenario_unrun();
    w.arm_watch("rpc.retransmits > 0").unwrap();
    w.spawn(0, "main", vec![Value::Int(4)]);
    w.run_until_idle(SimTime::from_secs(60));
    assert!(!w.watch_trips().is_empty(), "the watch must trip");
    let last = w.blackbox_last().expect("trip must freeze a snapshot");
    let snap = BlackboxSnapshot::parse(last).expect("snapshot parses");
    assert_eq!(snap.reason, "watch rpc.retransmits > 0");
    assert_eq!(snap.at, w.watch_trips()[0].2.at);
    assert_eq!(snap.sync_index, w.watch_trips()[0].2.sync_index);
    assert!(snap.metrics.contains("counter rpc.retransmits"));
}

/// The tsdb scenario's world, built but not yet driven.
fn tsdb_scenario_unrun() -> World {
    let net = NetworkConfig {
        p_silent_loss: 0.08,
        ..NetworkConfig::default()
    };
    World::builder()
        .nodes(4)
        .program(FANOUT_MAIN)
        .program_for(1, SERVER)
        .program_for(2, SERVER)
        .program_for(3, SERVER)
        .network(net)
        .seed(0x1055)
        .tsdb(true)
        .build()
        .expect("tsdb scenario builds")
}

#[test]
fn coarse_store_answers_when_tsdb_is_off() {
    let mut w = World::builder()
        .nodes(2)
        .program(FANOUT_MAIN)
        .program_for(1, SERVER)
        .build()
        .expect("builds");
    // Keep the fan-out on existing nodes only.
    let summary_before = w.tsdb_summary();
    assert!(summary_before.contains("interval 64"), "{summary_before}");
    w.run_until_idle(SimTime::from_secs(1));
    // The coarse store samples every 64th sync point; a short idle run
    // may retain nothing yet, but the store must still answer.
    assert!(w.tsdb_summary().starts_with("tsdb:"));
    assert!(w
        .tsdb_report("no.such.metric", 1)
        .contains("no series named"));
}

/// The blackbox event ring must route events by category: Vm events are
/// excluded by default (they would churn the whole ring), and restoring
/// the strict off path empties it.
#[test]
fn blackbox_ring_excludes_vm_by_default() {
    let w = tsdb_scenario(1);
    let snap = w.blackbox_snapshot("gate");
    let events = snap.decode_events().expect("decodes");
    assert!(!events.is_empty());
    assert!(
        events.iter().all(|e| e.category != TraceCategory::Vm),
        "Vm events must not reach the flight-recorder ring by default"
    );
}
