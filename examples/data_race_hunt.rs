//! Hunting an unsafe shared-memory bug with Pilgrim (§5.1).
//!
//! "Interaction may occur through undisciplined or unsafe concurrent
//! access to data. It is important to consider this possibility since the
//! programs which the debugger must cope with probably contain bugs of
//! this kind."
//!
//! Two processes increment a shared `own` counter with an unprotected
//! read-modify-write. The program loses updates — but only under real
//! scheduling, so the bug appears in the target environment and the
//! programmer investigates it there: halt the node mid-run, inspect both
//! process stacks and the global, watch the interleaving, then verify the
//! fix (a monitor lock) in the same session.
//!
//! Run with: `cargo run --example data_race_hunt`

use pilgrim::{SimDuration, SimTime, World};

const BUGGY: &str = "\
own count: int := 0
own done: int := 0

worker = proc (rounds: int)
 for i: int := 1 to rounds do
  c: int := count        % read
  sleep(1)               % lose the time slice mid-update
  count := c + 1         % write back (stale!)
 end
 done := done + 1
end

main = proc ()
 fork worker(50)
 fork worker(50)
 while done < 2 do
  sleep(20)
 end
 print(\"count = \" || int$unparse(count))
end";

const FIXED: &str = "\
own count: int := 0
own done: int := 0
own lock_holder: int := 0

worker = proc (rounds: int, m: mutex)
 for i: int := 1 to rounds do
  mutex$lock(m)
  c: int := count
  sleep(1)
  count := c + 1
  mutex$unlock(m)
 end
 done := done + 1
end

main = proc ()
 m: mutex := mutex$create()
 fork worker(50, m)
 fork worker(50, m)
 while done < 2 do
  sleep(20)
 end
 print(\"count = \" || int$unparse(count))
end";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== the symptom: 100 increments, fewer than 100 counted ==");
    let mut world = World::builder().nodes(1).program(BUGGY).build()?;
    world.debug_connect(&[0], false)?;
    world.spawn(0, "main", vec![]);
    world.run_for(SimDuration::from_millis(40));

    // Halt the node mid-run and look around (§5.4: all process state
    // visible, including what each worker believes the counter to be).
    world.debug_halt_all(0)?;
    println!("\n-- halted mid-run; the supervisor's view (§5.4): --");
    let procs = world.debug_processes(0)?;
    for p in &procs {
        println!("  p{} {:<10} {:?}", p.pid, p.name, p.state);
    }
    let count_now = world.inspect(0, procs[0].pid, "count")?;
    println!("  shared `count` = {count_now}");
    // Each worker's private copy `c` — the smoking gun if they are equal.
    let workers: Vec<u64> = procs
        .iter()
        .filter(|p| p.name == "worker")
        .map(|p| p.pid)
        .collect();
    for w in &workers {
        if let Ok(c) = world.inspect(0, *w, "c") {
            println!("  worker p{w} holds stale c = {c}");
        }
    }
    world.debug_resume_all()?;
    world.run_until_idle(SimTime::from_secs(60));
    let buggy_out = world.console(0);
    println!("\nfinal output: {buggy_out:?}  (expected count = 100)");
    let buggy_count: i64 = buggy_out[0].trim_start_matches("count = ").parse()?;
    assert!(buggy_count < 100, "the race must lose updates");

    println!("\n== the fix: the same read-modify-write under a monitor lock ==");
    let mut world = World::builder().nodes(1).program(FIXED).build()?;
    world.spawn(0, "main", vec![]);
    world.run_until_idle(SimTime::from_secs(120));
    let fixed_out = world.console(0);
    println!("final output: {fixed_out:?}");
    assert_eq!(fixed_out, vec!["count = 100"]);

    println!("\nThe debugger halted *all* processes atomically (no partial");
    println!("interleavings while inspecting), read both workers' stale");
    println!("copies, and confirmed the fix — in the target environment,");
    println!("with no recompilation of the program under test (§1).");
    Ok(())
}
