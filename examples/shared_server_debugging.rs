//! Debugging a client of a shared server (§6): AOTMan TUIDs.
//!
//! A client holds a TUID from the authentication manager and must refresh
//! it every second or lose it. The programmer halts the client at a
//! "breakpoint" for five seconds — far longer than the TUID lifetime.
//!
//! * A **naive** server revokes the TUID during the halt: the debugging
//!   session has destroyed the program's credentials.
//! * A server using the **Figure 4** algorithm asks the client's agent
//!   (`get_debuggee_status`) and the debugger (`convert_debuggee_time`)
//!   and extends the timeout by exactly the halted time.
//!
//! Run with: `cargo run --example shared_server_debugging`

use pilgrim::{SimDuration, Value, World};
use pilgrim_services::{AotConfig, AotMan, TimeoutStrategy};

const CLIENT: &str = "\
extern aot_issue = proc () returns (int, int)
extern aot_refresh = proc (t: int) returns (bool)
extern aot_check = proc (t: int) returns (bool)

main = proc (svc: int)
 t: int := 0
 life: int := 0
 t, life := call aot_issue() at svc
 print(\"got TUID \" || int$unparse(t) || \" (lifetime \" || int$unparse(life) || \" ms)\")
 for i: int := 1 to 8 do
  sleep(1000)
  ok: bool := call aot_refresh(t) at svc
  if ~ok then
   print(\"refresh REJECTED — our TUID was revoked while we were halted\")
   return
  end
 end
 valid: bool := call aot_check(t) at svc
 if valid then
  print(\"TUID survived the whole session\")
 else
  print(\"TUID lost\")
 end
end";

fn run(strategy: TimeoutStrategy) -> (Vec<String>, pilgrim_services::StrategyStats) {
    let mut world = World::builder()
        .nodes(2)
        .program(CLIENT)
        .build()
        .expect("world");
    let aot = AotMan::install(
        &mut world,
        1,
        AotConfig {
            lifetime: SimDuration::from_secs(2),
            strategy,
            ..Default::default()
        },
    );
    world.debug_connect(&[0], false).expect("connect");
    world.spawn(0, "main", vec![Value::Int(1)]);
    world.run_for(SimDuration::from_millis(2_500));

    // Halt the client for 5 s — more than twice the TUID lifetime.
    world.debug_halt_all(0).expect("halt");
    world.run_for(SimDuration::from_secs(5));
    world.debug_resume_all().expect("resume");

    world.run_until_idle(world.now() + SimDuration::from_secs(30));
    (world.console(0), aot.stats())
}

fn main() {
    for strategy in [
        TimeoutStrategy::Naive,
        TimeoutStrategy::IgnoreWhileDebugged,
        TimeoutStrategy::StatusOnly,
        TimeoutStrategy::StatusAndConvert,
    ] {
        println!("== server strategy: {strategy} ==");
        let (console, stats) = run(strategy);
        for line in &console {
            println!("  client: {line}");
        }
        println!(
            "  server work: {} status calls, {} convert calls, {} extensions, {} revocations\n",
            stats.status_calls, stats.convert_calls, stats.extensions, stats.revocations
        );
    }
    println!("Naive loses the TUID; every debug-aware strategy keeps it.");
    println!("Figure 3 pays a status RPC per timeout even when idle; Figure 4");
    println!("pays only when a timeout actually expires (§6.2).");
}
