//! An interactive Pilgrim session: drive the debugger with textual
//! commands against a live three-node distributed program.
//!
//! Run with: `cargo run --example debugger_repl`           (demo script)
//!           `cargo run --example debugger_repl -- -i`     (interactive)
//!
//! Type `help` for the command list.

use std::io::{self, BufRead, Write};

use pilgrim::{DebugCli, World};

const PROGRAM: &str = "\
% A three-tier lookup: front end -> cache -> storage.
storage = proc (key: int) returns (int)
 sleep(100)
 return (key * 111)
end

cache_get = proc (key: int) returns (int)
 v: int := call storage(key) at 2
 return (v)
end

main = proc ()
 for key: int := 1 to 3 do
  v: int := call cache_get(key) at 1
  print(\"key \" || int$unparse(key) || \" -> \" || int$unparse(v))
 end
end";

const DEMO: &str = "\
help
connect
break 2 storage
run 0 main
wait-stop
btd
print key
set key 9
breakpoints
clear 2 0
cont
wait 4000
console 0
time 0
disconnect";

fn main() -> io::Result<()> {
    let interactive = std::env::args().any(|a| a == "-i" || a == "--interactive");
    let mut world = World::builder()
        .nodes(3)
        .program(PROGRAM)
        .build()
        .expect("program compiles");
    let mut cli = DebugCli::new();

    println!("Pilgrim debugger — 3 nodes on a simulated Cambridge Ring.");
    println!("(front end on node0, cache on node1, storage on node2)\n");

    if interactive {
        let stdin = io::stdin();
        print!("pilgrim> ");
        io::stdout().flush()?;
        for line in stdin.lock().lines() {
            let line = line?;
            if line.trim() == "quit" || line.trim() == "exit" {
                break;
            }
            println!("{}", cli.exec(&mut world, &line));
            print!("pilgrim> ");
            io::stdout().flush()?;
        }
    } else {
        print!("{}", cli.exec_script(&mut world, DEMO));
        println!("\n(pass -i for an interactive prompt)");
    }
    Ok(())
}
