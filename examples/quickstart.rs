//! Quickstart: a complete Pilgrim debugging session on one node.
//!
//! Builds a simulated node running a small Concurrent CLU program,
//! connects the debugger, plants a source-line breakpoint, inspects and
//! modifies a variable at the stop, steps, and resumes — every interaction
//! travelling over the simulated Cambridge Ring.
//!
//! Run with: `cargo run --example quickstart`

use pilgrim::{DebugEvent, SimDuration, SimTime, WireValue, World};

const PROGRAM: &str = "\
% Compute a running total with a helper procedure.
bump = proc (total: int, amount: int) returns (int)
 next: int := total + amount
 return (next)
end

main = proc ()
 total: int := 0
 for i: int := 1 to 5 do
  total := bump(total, i)
 end
 print(\"total = \" || int$unparse(total))
end";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut world = World::builder().nodes(1).program(PROGRAM).build()?;

    println!("== connect the debugger (over the ring) ==");
    let session = world.debug_connect(&[0], false)?;
    println!("connected: {session}");

    println!("\n== plant a breakpoint at line 4 (`return (next)`) ==");
    let bp = world.break_at_line(0, 4)?;
    println!("breakpoint #{bp} planted");

    println!("\n== start the program ==");
    let pid = world.spawn(0, "main", vec![]).0;

    // First stop.
    let ev = world.wait_for_stop(SimDuration::from_secs(2))?;
    if let DebugEvent::BreakpointHit { proc, line, at, .. } = &ev {
        println!("stopped in `{proc}` at line {line:?} (t = {at})");
    }

    println!("\n== source-level inspection ==");
    for name in ["total", "amount", "next"] {
        println!("  {name} = {}", world.inspect(0, pid, name)?);
    }
    println!("backtrace:");
    for frame in world.backtrace(0, pid)? {
        println!("  {frame}");
    }

    println!("\n== modify `next` and continue: the computation changes ==");
    world.set_variable(0, pid, "next", WireValue::Int(100))?;
    world.clear_breakpoint(0, bp)?;
    world.continue_process(0, pid)?;
    world.debug_resume_all()?;

    world.run_until_idle(SimTime::from_secs(10));
    println!("\nprogram output: {:?}", world.console(0));
    assert_eq!(world.console(0), vec!["total = 114"]); // 100+2+3+4+5

    world.debug_disconnect()?;
    println!("session closed; the node kept running (paper §3).");
    Ok(())
}
