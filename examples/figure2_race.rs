//! Figure 2: the breakpoint/semaphore-timeout race, with and without
//! Pilgrim's time-consistent halting.
//!
//! Process Q on node B waits on a semaphore with a timeout; process P on
//! node A calls a remote procedure on B that signals it. If a breakpoint
//! halts the program and the debugger does *not* freeze timeouts, Q "sees"
//! that P has halted: its wait times out during the interruption and the
//! computation after the breakpoint differs from any computation that
//! could have occurred without the debugger — an *atypical* computation
//! (§5.1).
//!
//! This example runs the same scenario twice: once with a naive halt
//! (frozen timeouts disabled) and once with Pilgrim's supervisor support.
//!
//! Run with: `cargo run --example figure2_race`

use pilgrim::{NodeConfig, SimDuration, World};

/// Node 0 = A (runs P), node 1 = B (runs Q and the remote procedure).
const PROGRAM: &str = "\
% Q: waits up to 10 seconds for the semaphore (Figure 2).
q_process = proc (s: sem)
 ok: bool := sem$wait(s, 10000)
 if ok then
  print(\"Q: signalled by P\")
 else
  print(\"Q: TIMED OUT — atypical computation!\")
 end
end

% Remote procedure on B: create the semaphore, fork Q, then wait for P's
% signal call.
arm = proc () returns (bool)
 s: sem := sem$create(0)
 fork q_process(s)
 fork deliverer(s)
 return (true)
end

% Stands in for the arrival of P's signalling RPC 2 seconds later.
deliverer = proc (s: sem)
 sleep(2000)
 sem$signal(s)
end

% P on node A.
p_process = proc ()
 ok: bool := call arm() at 1
 print(\"P: armed the race on node B\")
end";

fn run_scenario(freeze: bool) -> Vec<String> {
    let mut world = World::builder()
        .nodes(2)
        .program(PROGRAM)
        .node_config(NodeConfig {
            freeze_timeouts_on_halt: freeze,
            ..Default::default()
        })
        .build()
        .expect("world builds");
    world.debug_connect(&[0, 1], false).expect("connect");
    world.spawn(0, "p_process", vec![]);
    world.run_for(SimDuration::from_millis(500));

    // The programmer halts everything at a breakpoint and thinks for 15
    // simulated seconds — longer than Q's whole 10-second timeout.
    world.debug_halt_all(0).expect("halt");
    world.run_for(SimDuration::from_secs(15));
    world.debug_resume_all().expect("resume");

    world.run_until_idle(world.now() + SimDuration::from_secs(20));
    world.console(1)
}

fn main() {
    println!("== naive halting (timeouts keep running while halted) ==");
    let naive = run_scenario(false);
    for line in &naive {
        println!("  node B: {line}");
    }

    println!("\n== Pilgrim halting (supervisor freezes timeouts, §5.2) ==");
    let pilgrim = run_scenario(true);
    for line in &pilgrim {
        println!("  node B: {line}");
    }

    assert!(naive.iter().any(|l| l.contains("TIMED OUT")));
    assert!(pilgrim.iter().any(|l| l.contains("signalled")));
    println!("\nWith Pilgrim, the 15-second interruption is invisible to the");
    println!("program: Q still gets its signal — a typical computation.");
}
