//! Post-mortem diagnosis of a failed `maybe` RPC (§4.1).
//!
//! "The failure of a call performed with the *maybe* RPC protocol could be
//! due to either the call or reply packet being lost. The debugger ought
//! to allow the programmer to find out which is the case."
//!
//! This example injects both kinds of loss and shows the debugger telling
//! them apart by combining the client's ten-slot cyclic buffer of recent
//! call outcomes with the server's knowledge of the call identifier.
//!
//! Run with: `cargo run --example rpc_postmortem`

use pilgrim::{EventKind, MaybeDiagnosis, NodeId, SimDuration, World};

const PROGRAM: &str = "\
account_update = proc (amount: int) returns (int)
 return (amount + 1)                 % pretend this has side effects!
end

main = proc ()
 ok: bool := true
 r: int := 0
 ok, r := maybecall account_update(100) at 1
 if ok then
  print(\"update applied: \" || int$unparse(r))
 else
  print(\"update FAILED — but did the server run it?\")
 end
 sleep(600000)                        % stay alive for the post-mortem
end";

fn scenario(drop_call: bool) -> Result<(), Box<dyn std::error::Error>> {
    let mut world = World::builder().nodes(2).program(PROGRAM).build()?;
    world.debug_connect(&[0, 1], false)?;

    if drop_call {
        println!("-- injecting: the CALL packet will be lost --");
        world.net_mut().drop_next(NodeId(0), NodeId(1), 1);
    } else {
        println!("-- injecting: the REPLY packet will be lost --");
        world.net_mut().drop_next(NodeId(1), NodeId(0), 1);
    }

    world.spawn(0, "main", vec![]);
    world.run_for(SimDuration::from_millis(300));
    println!("client says: {:?}", world.console(0));

    // The programmer pulls up the client's recent-RPC cyclic buffer...
    let recent = world.recent_calls(0)?;
    let (call_id, ok) = *recent.last().expect("one call recorded");
    println!("recent calls buffer: call#{call_id} ok={ok}");
    assert!(!ok);

    // ...and asks the server's agent what it knows about that call id.
    let diagnosis = world.diagnose_maybe_failure(1, call_id)?;
    match diagnosis {
        MaybeDiagnosis::LostCall => {
            println!("diagnosis: LOST CALL — the server never saw call#{call_id};");
            println!("           the update did NOT happen. Safe to retry.\n");
        }
        MaybeDiagnosis::LostReply => {
            println!("diagnosis: LOST REPLY — the server executed call#{call_id}");
            println!("           and replied; the update DID happen. Retrying");
            println!("           would apply it twice!\n");
        }
        other => println!("diagnosis: {other:?}\n"),
    }
    if drop_call {
        assert_eq!(diagnosis, MaybeDiagnosis::LostCall);
    } else {
        assert_eq!(diagnosis, MaybeDiagnosis::LostReply);
    }
    Ok(())
}

/// A healthy run of the same call, with its cross-node causal timeline
/// reconstructed **from the trace alone**: the call's span is stamped on
/// every packet, dispatch, and completion event it causes, on both nodes.
fn span_timeline() -> Result<(), Box<dyn std::error::Error>> {
    println!("-- no loss: reconstructing the call's causal timeline --");
    let mut world = World::builder()
        .nodes(2)
        .program(PROGRAM)
        .debugger(false)
        .build()?;
    world.spawn(0, "main", vec![]);
    world.run_for(SimDuration::from_millis(300));

    // Nothing below consults the endpoints or nodes: only trace events.
    let start = world
        .tracer()
        .events()
        .into_iter()
        .find(|e| matches!(e.kind, EventKind::CallStarted { .. }))
        .expect("the call start was traced");
    let span = start.span.expect("calls are born with a span");
    let timeline = world.tracer().events_for_span(span);
    println!("timeline of span {span}:");
    for ev in &timeline {
        println!("  {ev}");
    }
    let pos = |name: &str, node: u32| {
        timeline
            .iter()
            .position(|e| e.kind.name() == name && e.node == Some(node))
            .unwrap_or_else(|| panic!("missing {name} on node{node}"))
    };
    let client_send = pos("PacketSent", 0);
    let server_exec = pos("ServerDispatched", 1);
    let reply_deliver = pos("PacketDelivered", 0);
    let completed = pos("CallCompleted", 0);
    assert!(
        client_send < server_exec && server_exec < reply_deliver && reply_deliver < completed,
        "client send -> server execute -> reply deliver -> completion"
    );
    println!("client send -> server execute -> reply deliver -> completion: causally ordered\n");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    scenario(true)?;
    scenario(false)?;
    span_timeline()?;
    println!("Same client-side symptom, opposite recovery actions — which is");
    println!("exactly why the paper wants the debugger to distinguish them.");
    Ok(())
}
