//! Post-mortem diagnosis of a failed `maybe` RPC (§4.1).
//!
//! "The failure of a call performed with the *maybe* RPC protocol could be
//! due to either the call or reply packet being lost. The debugger ought
//! to allow the programmer to find out which is the case."
//!
//! This example injects both kinds of loss and shows the debugger telling
//! them apart by combining the client's ten-slot cyclic buffer of recent
//! call outcomes with the server's knowledge of the call identifier.
//!
//! Run with: `cargo run --example rpc_postmortem`

use pilgrim::{
    DebugCli, EventKind, MaybeDiagnosis, NetworkConfig, NodeId, SimDuration, SimTime, Value, World,
};

const PROGRAM: &str = "\
account_update = proc (amount: int) returns (int)
 return (amount + 1)                 % pretend this has side effects!
end

main = proc ()
 ok: bool := true
 r: int := 0
 ok, r := maybecall account_update(100) at 1
 if ok then
  print(\"update applied: \" || int$unparse(r))
 else
  print(\"update FAILED — but did the server run it?\")
 end
 sleep(600000)                        % stay alive for the post-mortem
end";

fn scenario(drop_call: bool) -> Result<(), Box<dyn std::error::Error>> {
    let mut world = World::builder().nodes(2).program(PROGRAM).build()?;
    world.debug_connect(&[0, 1], false)?;

    if drop_call {
        println!("-- injecting: the CALL packet will be lost --");
        world.net_mut().drop_next(NodeId(0), NodeId(1), 1);
    } else {
        println!("-- injecting: the REPLY packet will be lost --");
        world.net_mut().drop_next(NodeId(1), NodeId(0), 1);
    }

    world.spawn(0, "main", vec![]);
    world.run_for(SimDuration::from_millis(300));
    println!("client says: {:?}", world.console(0));

    // The programmer pulls up the client's recent-RPC cyclic buffer...
    let recent = world.recent_calls(0)?;
    let (call_id, ok) = *recent.last().expect("one call recorded");
    println!("recent calls buffer: call#{call_id} ok={ok}");
    assert!(!ok);

    // ...and asks the server's agent what it knows about that call id.
    let diagnosis = world.diagnose_maybe_failure(1, call_id)?;
    match diagnosis {
        MaybeDiagnosis::LostCall => {
            println!("diagnosis: LOST CALL — the server never saw call#{call_id};");
            println!("           the update did NOT happen. Safe to retry.\n");
        }
        MaybeDiagnosis::LostReply => {
            println!("diagnosis: LOST REPLY — the server executed call#{call_id}");
            println!("           and replied; the update DID happen. Retrying");
            println!("           would apply it twice!\n");
        }
        other => println!("diagnosis: {other:?}\n"),
    }
    if drop_call {
        assert_eq!(diagnosis, MaybeDiagnosis::LostCall);
    } else {
        assert_eq!(diagnosis, MaybeDiagnosis::LostReply);
    }
    Ok(())
}

/// A healthy run of the same call, with its cross-node causal timeline
/// reconstructed **from the trace alone**: the call's span is stamped on
/// every packet, dispatch, and completion event it causes, on both nodes.
fn span_timeline() -> Result<(), Box<dyn std::error::Error>> {
    println!("-- no loss: reconstructing the call's causal timeline --");
    let mut world = World::builder()
        .nodes(2)
        .program(PROGRAM)
        .debugger(false)
        .build()?;
    world.spawn(0, "main", vec![]);
    world.run_for(SimDuration::from_millis(300));

    // Nothing below consults the endpoints or nodes: only trace events.
    let start = world
        .tracer()
        .events()
        .into_iter()
        .find(|e| matches!(e.kind, EventKind::CallStarted { .. }))
        .expect("the call start was traced");
    let span = start.span.expect("calls are born with a span");
    let timeline = world.tracer().events_for_span(span);
    println!("timeline of span {span}:");
    for ev in &timeline {
        println!("  {ev}");
    }
    let pos = |name: &str, node: u32| {
        timeline
            .iter()
            .position(|e| e.kind.name() == name && e.node == Some(node))
            .unwrap_or_else(|| panic!("missing {name} on node{node}"))
    };
    let client_send = pos("PacketSent", 0);
    let server_exec = pos("ServerDispatched", 1);
    let reply_deliver = pos("PacketDelivered", 0);
    let completed = pos("CallCompleted", 0);
    assert!(
        client_send < server_exec && server_exec < reply_deliver && reply_deliver < completed,
        "client send -> server execute -> reply deliver -> completion"
    );
    println!("client send -> server execute -> reply deliver -> completion: causally ordered\n");
    Ok(())
}

/// Causal critical-path analytics on a *lossy* run: a fan-out of calls
/// to three servers over a network that silently drops packets, then
/// the REPL's `slow` and `path` commands showing which calls paid for
/// the losses — queue vs network vs server time, retransmits counted.
fn critical_path_on_a_lossy_run() -> Result<(), Box<dyn std::error::Error>> {
    const MAIN: &str = "\
ping = proc (x: int) returns (int)
 fail(\"servers implement ping\")
end

main = proc (rounds: int)
 total: int := 0
 for i: int := 1 to rounds do
  total := total + call ping(i) at 1
  total := total + call ping(i * 10) at 2
  total := total + call ping(i * 100) at 3
 end
 print(\"total \" || int$unparse(total))
end";
    const SERVER: &str = "\
ping = proc (x: int) returns (int)
 return (x * 2)
end";
    println!("-- lossy fan-out: where did the time go? --");
    let mut world = World::builder()
        .nodes(4)
        .program(MAIN)
        .program_for(1, SERVER)
        .program_for(2, SERVER)
        .program_for(3, SERVER)
        .network(NetworkConfig {
            p_silent_loss: 0.08,
            ..NetworkConfig::default()
        })
        .seed(0x1055)
        .debugger(false)
        .build()?;
    world.spawn(0, "main", vec![Value::Int(4)]);
    world.run_until_idle(SimTime::from_secs(60));

    let mut cli = DebugCli::new();
    let slow = cli.exec(&mut world, "slow 3");
    println!("pilgrim> slow 3\n{slow}");
    // The slowest span is the natural post-mortem target: its causal
    // path attributes every simulated microsecond it spent.
    let slowest_span = slow
        .lines()
        .nth(1)
        .and_then(|l| l.split_whitespace().nth(1))
        .expect("slow reports at least one span");
    let path = cli.exec(&mut world, &format!("path {slowest_span}"));
    println!("pilgrim> path {slowest_span}\n{path}");
    assert!(
        path.contains("retransmits") && path.contains("net"),
        "per-segment attribution missing:\n{path}"
    );
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    scenario(true)?;
    scenario(false)?;
    span_timeline()?;
    critical_path_on_a_lossy_run()?;
    println!("Same client-side symptom, opposite recovery actions — which is");
    println!("exactly why the paper wants the debugger to distinguish them.");
    Ok(())
}
