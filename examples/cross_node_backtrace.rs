//! Figure 1: stack backtraces that cross node boundaries.
//!
//! A three-tier distributed program — `main` on node 0 calls `middle` on
//! node 1, which calls `storage` on node 2. While the innermost call is
//! executing, the debugger reconstructs the *whole* distributed call chain
//! by following the RPC information blocks (client stub frames) and the
//! server call tables, exactly as §4.3 describes. The in-progress call's
//! protocol state and retransmission count are shown along the way.
//!
//! Run with: `cargo run --example cross_node_backtrace`

use pilgrim::{SimDuration, SimTime, World};

const PROGRAM: &str = "\
storage = proc (key: int) returns (int)
 sleep(120)                      % pretend to fetch from disk
 return (key * 10)
end

middle = proc (key: int) returns (int)
 cached: int := call storage(key) at 2
 return (cached + 1)
end

main = proc ()
 answer: int := call middle(4) at 1
 print(\"answer = \" || int$unparse(answer))
end";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut world = World::builder().nodes(3).program(PROGRAM).build()?;
    world.debug_connect(&[0, 1, 2], false)?;

    let client = world.spawn(0, "main", vec![]).0;

    // Let the chain build up: main → middle (node 1) → storage (node 2).
    world.run_for(SimDuration::from_millis(50));

    println!("== the client's in-progress RPC (from the information block) ==");
    if let Some(call) = world.rpc_status(0, client)? {
        println!(
            "  p{client} is inside call#{} `{}` to {} [{}] — state: {}, retries: {}",
            call.call_id, call.proc, call.dst, call.protocol, call.state, call.retries
        );
    }

    println!("\n== distributed backtrace across three nodes ==");
    let chain = world.distributed_backtrace(0, client)?;
    for frame in &chain {
        println!("  {frame}");
    }

    // Sanity: the chain spans all three nodes, storage deepest.
    let nodes: Vec<u32> = chain.iter().map(|f| f.node).collect();
    assert!(nodes.contains(&0) && nodes.contains(&1) && nodes.contains(&2));
    assert_eq!(chain.last().unwrap().proc_name, "storage");

    // Inspect a variable *in the middle tier* from the same session — no
    // mode switch, same source-level interface (§4.1).
    let middle_frame = chain
        .iter()
        .find(|f| f.node == 1 && f.kind == "server-root")
        .unwrap();
    let key = world.inspect(1, middle_frame.pid, "key")?;
    println!("\nmiddle tier's `key` = {key}");

    world.run_until_idle(SimTime::from_secs(5));
    println!("\nprogram output: {:?}", world.console(0));
    assert_eq!(world.console(0), vec!["answer = 41"]);
    Ok(())
}
